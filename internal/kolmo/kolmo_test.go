package kolmo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/bitio"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

func TestCompressorsOnConstantString(t *testing.T) {
	// All-zero string: every compressor must beat the raw length massively.
	data := make([]byte, 1250) // 10000 bits
	for _, c := range DefaultCompressors() {
		size, err := c.CompressedBits(data, 10000)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if size >= 5000 {
			t.Errorf("%s on zeros: %d bits, want < 5000", c.Name(), size)
		}
	}
}

func TestCompressorsOnRandomString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 1250)
	rng.Read(data)
	for _, c := range DefaultCompressors() {
		size, err := c.CompressedBits(data, 10000)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		// Random data is incompressible: no real savings beyond noise.
		if size < 9500 {
			t.Errorf("%s on random bits: %d bits, impossibly small", c.Name(), size)
		}
	}
}

func TestCompressedBitsValidation(t *testing.T) {
	for _, c := range DefaultCompressors() {
		if _, err := c.CompressedBits([]byte{0}, 9); err == nil {
			t.Errorf("%s: 9 bits in 1 byte accepted", c.Name())
		}
		size, err := c.CompressedBits(nil, 0)
		if err != nil {
			t.Errorf("%s: empty input: %v", c.Name(), err)
		}
		if c.Name() != "flate" && size != 0 {
			t.Errorf("%s: empty input costs %d bits", c.Name(), size)
		}
	}
}

func TestOrder0Skewed(t *testing.T) {
	// 1000 bits with 10 ones: H(0.01) ≈ 0.0808 → body ≈ 81 bits.
	w := bitio.NewWriter(1000)
	for i := 0; i < 1000; i++ {
		w.WriteBit(i%100 == 0)
	}
	size, err := Order0Compressor{}.CompressedBits(w.Bytes(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if size < 60 || size > 150 {
		t.Fatalf("order0 on skewed = %d bits, want ≈ 81 + header", size)
	}
}

func TestDeficiencyStructuredVsRandom(t *testing.T) {
	// Complete graph: E(G) is all ones — huge deficiency.
	k, err := gengraph.Complete(60)
	if err != nil {
		t.Fatal(err)
	}
	defK, err := Deficiency(k)
	if err != nil {
		t.Fatal(err)
	}
	if defK < graph.EdgeCodeLen(60)/2 {
		t.Fatalf("complete graph deficiency = %d, want > %d", defK, graph.EdgeCodeLen(60)/2)
	}
	// Uniform random graph: deficiency bounded by small header noise.
	g, err := gengraph.GnHalf(60, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	defG, err := Deficiency(g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(defG) > 3*math.Log2(60)+64 {
		t.Fatalf("random graph deficiency = %d, want ≤ c·log n + slack", defG)
	}
}

func TestCertifyRandomGraph(t *testing.T) {
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.DiameterIs2 {
		t.Error("G(128,1/2) should have diameter 2")
	}
	if !cert.DegreeOK {
		t.Errorf("degree predicate failed: %s", cert)
	}
	if !cert.CoverOK {
		t.Errorf("cover predicate failed: %s", cert)
	}
	if !cert.DeficiencyOK {
		t.Errorf("deficiency predicate failed: %s", cert)
	}
	if !cert.OK() {
		t.Errorf("certificate not OK: %s", cert)
	}
	if cert.String() == "" {
		t.Error("empty String()")
	}
}

func TestCertifyRejectsStructured(t *testing.T) {
	k, err := gengraph.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatal("complete graph certified as random")
	}
	if cert.DiameterIs2 {
		t.Error("complete graph has diameter 1, not 2")
	}
	if cert.DeficiencyOK {
		t.Error("complete graph should be highly compressible")
	}

	// Use a longer chain: the Lemma 1 radius √((c+1)·log n·n) is generous at
	// small n, but at n = 256 a degree of 1 falls far outside it.
	chain, err := gengraph.Chain(256)
	if err != nil {
		t.Fatal(err)
	}
	cert, err = Certify(chain, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK() {
		t.Fatal("chain certified as random")
	}
	if cert.DegreeOK {
		t.Error("chain degrees nowhere near (n−1)/2")
	}
}

func TestCertifyTooSmall(t *testing.T) {
	g := graph.MustNew(4)
	if _, err := Certify(g, 3); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("Certify(n=4): err = %v, want ErrNotApplicable", err)
	}
}

func TestDiameterIsTwoEdgeCases(t *testing.T) {
	k, err := gengraph.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	if DiameterIsTwo(k) {
		t.Error("complete graph reported diameter 2")
	}
	star, err := gengraph.Star(10)
	if err != nil {
		t.Fatal(err)
	}
	if !DiameterIsTwo(star) {
		t.Error("star should have diameter 2")
	}
	chain, err := gengraph.Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	if DiameterIsTwo(chain) {
		t.Error("chain reported diameter 2")
	}
	if DiameterIsTwo(graph.MustNew(2)) {
		t.Error("2-node graph reported diameter 2")
	}
}

func TestCoverPrefix(t *testing.T) {
	// Star centre: no non-neighbours → prefix 0. Leaf: all other leaves
	// covered by the centre, its first (only) neighbour → prefix 1.
	star, err := gengraph.Star(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CoverPrefix(star, 1)
	if err != nil || p != 0 {
		t.Fatalf("centre CoverPrefix = %d, %v; want 0", p, err)
	}
	p, err = CoverPrefix(star, 5)
	if err != nil || p != 1 {
		t.Fatalf("leaf CoverPrefix = %d, %v; want 1", p, err)
	}
	mp, err := MaxCoverPrefix(star)
	if err != nil || mp != 1 {
		t.Fatalf("MaxCoverPrefix = %d, %v; want 1", mp, err)
	}
	// Chain: node 1 cannot 2-cover node 10.
	chain, err := gengraph.Chain(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CoverPrefix(chain, 1); err == nil {
		t.Fatal("CoverPrefix on chain should fail (distance > 2)")
	}
	if _, err := MaxCoverPrefix(chain); err == nil {
		t.Fatal("MaxCoverPrefix on chain should fail")
	}
}

func TestCoverPrefixScalesLogarithmically(t *testing.T) {
	// Lemma 3: cover prefixes of random graphs stay within (c+3)·log n.
	for _, n := range []int{64, 128, 256} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		mp, err := MaxCoverPrefix(g)
		if err != nil {
			t.Fatal(err)
		}
		budget := 6 * math.Log2(float64(n))
		if float64(mp) > budget {
			t.Errorf("n=%d: MaxCoverPrefix = %d > budget %.1f", n, mp, budget)
		}
	}
}

func TestDegreeExtremes(t *testing.T) {
	g := graph.MustNew(5)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	lo, hi := DegreeExtremes(g)
	if lo != 0 || hi != 1 {
		t.Fatalf("extremes = %d, %d", lo, hi)
	}
	lo, hi = DegreeExtremes(graph.MustNew(0))
	if lo != 0 || hi != 0 {
		t.Fatalf("empty extremes = %d, %d", lo, hi)
	}
}

// identityCodec is a trivial description method: E(G) verbatim.
type identityCodec struct{}

func (identityCodec) Name() string { return "identity" }

func (identityCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	return g.EncodeBits(), true, nil
}

func (identityCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	return graph.DecodeBits(r, n)
}

// brokenCodec decodes to the wrong graph.
type brokenCodec struct{ identityCodec }

func (brokenCodec) Name() string { return "broken" }

func (brokenCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if _, err := graph.DecodeBits(r, n); err != nil {
		return nil, err
	}
	return graph.MustNew(n), nil
}

// shyCodec is never applicable.
type shyCodec struct{ identityCodec }

func (shyCodec) Name() string { return "shy" }

func (shyCodec) Encode(*graph.Graph) (*bitio.Writer, bool, error) { return nil, false, nil }

func TestDescribe(t *testing.T) {
	g, err := gengraph.GnHalf(20, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Describe(identityCodec{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bits != graph.EdgeCodeLen(20) || d.Savings != 0 {
		t.Fatalf("identity description = %+v", d)
	}
	if _, err := Describe(brokenCodec{}, g); !errors.Is(err, ErrRoundTrip) {
		t.Fatalf("broken codec: err = %v, want ErrRoundTrip", err)
	}
	if _, err := Describe(shyCodec{}, g); !errors.Is(err, ErrNotApplicableCodec) {
		t.Fatalf("shy codec: err = %v, want ErrNotApplicableCodec", err)
	}
}

func TestFirstCommonNeighborMatchesBruteForce(t *testing.T) {
	g, err := gengraph.Gnp(40, 0.3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 40; u++ {
		for v := u + 1; v <= 40; v++ {
			want := 0
			for w := 1; w <= 40; w++ {
				if g.HasEdge(u, w) && g.HasEdge(v, w) {
					want = w
					break
				}
			}
			if got := g.FirstCommonNeighbor(u, v); got != want {
				t.Fatalf("FirstCommonNeighbor(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestDeficiencyComplementInvariant(t *testing.T) {
	// A graph and its complement are equally incompressible (flipping bits
	// preserves information content); the estimators must agree within the
	// compressors' framing noise.
	g, err := gengraph.GnHalf(80, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Deficiency(g)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Deficiency(g.Complement())
	if err != nil {
		t.Fatal(err)
	}
	if diff := d1 - d2; diff > 128 || diff < -128 {
		t.Fatalf("deficiency %d vs complement %d", d1, d2)
	}
}

func TestBestDescription(t *testing.T) {
	g, err := gengraph.Chain(20)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestDescription(g, shyCodec{}, identityCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Codec != "identity" || best.Savings != 0 {
		t.Fatalf("best = %+v", best)
	}
	if _, err := BestDescription(g, shyCodec{}); !errors.Is(err, ErrNotApplicableCodec) {
		t.Fatalf("all-shy: err = %v", err)
	}
	if _, err := BestDescription(g, brokenCodec{}); !errors.Is(err, ErrRoundTrip) {
		t.Fatalf("broken: err = %v", err)
	}
}
