package kolmo_test

import (
	"fmt"
	"math/rand"

	"routetab/internal/gengraph"
	"routetab/internal/kolmo"
)

// Example_certification shows the randomness-certification flow: a uniform
// random graph passes every structural predicate, a chain fails them.
func Example_certification() {
	random, err := gengraph.GnHalf(128, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println(err)
		return
	}
	cert, err := kolmo.Certify(random, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("uniform sample certified:", cert.OK())

	chain, err := gengraph.Chain(128)
	if err != nil {
		fmt.Println(err)
		return
	}
	cert, err = kolmo.Certify(chain, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("chain certified:", cert.OK())
	// Output:
	// uniform sample certified: true
	// chain certified: false
}

// Example_deficiency shows compressibility as a randomness upper bound: the
// complete graph compresses massively, a random one not at all.
func Example_deficiency() {
	complete, err := gengraph.Complete(64)
	if err != nil {
		fmt.Println(err)
		return
	}
	defK, err := kolmo.Deficiency(complete)
	if err != nil {
		fmt.Println(err)
		return
	}
	random, err := gengraph.GnHalf(64, rand.New(rand.NewSource(2)))
	if err != nil {
		fmt.Println(err)
		return
	}
	defG, err := kolmo.Deficiency(random)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("complete graph compressible:", defK > 500)
	fmt.Println("random graph compressible:", defG > 500)
	// Output:
	// complete graph compressible: true
	// random graph compressible: false
}
