package kolmo

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
)

// Codec is a description method in the sense of the incompressibility
// arguments: an alternative, exact, self-contained encoding of a graph. Every
// lower-bound proof in the paper exhibits such a method whose output is
// shorter than E(G) by some savings; since a δ-random graph cannot be
// described in fewer than n(n−1)/2 − δ(n) bits, the savings bound the size of
// the object (routing function, distant pair, …) the method consumed.
//
// internal/descmethods implements the paper's proofs as Codecs; this file
// provides the contract and the verification harness.
type Codec interface {
	// Name identifies the description method in reports.
	Name() string
	// Encode writes a self-contained description of g. applicable=false
	// means the method's precondition fails on g (e.g. Lemma 2's codec needs
	// a pair at distance > 2); nothing is written in that case.
	Encode(g *graph.Graph) (w *bitio.Writer, applicable bool, err error)
	// Decode reconstructs the graph from a description produced by Encode,
	// given the node count n (the paper's conditional "given n").
	Decode(r *bitio.Reader, n int) (*graph.Graph, error)
}

// Codec verification errors.
var (
	// ErrRoundTrip indicates a codec whose Decode did not reproduce the
	// encoded graph.
	ErrRoundTrip = errors.New("kolmo: codec round trip failed")
	// ErrNotApplicableCodec indicates Encode declined the graph.
	ErrNotApplicableCodec = errors.New("kolmo: description method not applicable to this graph")
)

// Description is the outcome of applying a description method to a graph.
type Description struct {
	Codec string
	// Bits is the length of the description.
	Bits int
	// Savings is n(n−1)/2 − Bits: how far below the incompressibility floor
	// the method reached. On a δ-random graph, Savings > δ(n) is impossible
	// unless the method embeds extra information (that is the lower bound).
	Savings int
}

// BestDescription runs every codec on g and returns the applicable one with
// the largest savings, or ErrNotApplicableCodec when none applies (the
// expected outcome on certified random graphs — no description method can
// touch them).
func BestDescription(g *graph.Graph, codecs ...Codec) (*Description, error) {
	var best *Description
	for _, codec := range codecs {
		d, err := Describe(codec, g)
		if errors.Is(err, ErrNotApplicableCodec) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if best == nil || d.Savings > best.Savings {
			best = d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: none of %d codecs", ErrNotApplicableCodec, len(codecs))
	}
	return best, nil
}

// Describe runs codec on g, verifies the decode round-trips exactly, and
// returns the achieved description length and savings.
func Describe(codec Codec, g *graph.Graph) (*Description, error) {
	w, applicable, err := codec.Encode(g)
	if err != nil {
		return nil, fmt.Errorf("kolmo: %s encode: %w", codec.Name(), err)
	}
	if !applicable {
		return nil, fmt.Errorf("%w: %s", ErrNotApplicableCodec, codec.Name())
	}
	r := bitio.ReaderFor(w)
	back, err := codec.Decode(r, g.N())
	if err != nil {
		return nil, fmt.Errorf("kolmo: %s decode: %w", codec.Name(), err)
	}
	if !back.Equal(g) {
		return nil, fmt.Errorf("%w: %s", ErrRoundTrip, codec.Name())
	}
	return &Description{
		Codec:   codec.Name(),
		Bits:    w.Len(),
		Savings: graph.EdgeCodeLen(g.N()) - w.Len(),
	}, nil
}
