package keyspace

import "testing"

func TestSetBasics(t *testing.T) {
	s, err := New(130)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 64, 65, 128, 130} {
		s.Add(u)
	}
	s.Add(64) // idempotent
	if got := s.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	for _, u := range []int{1, 64, 65, 128, 130} {
		if !s.Has(u) {
			t.Errorf("Has(%d) = false", u)
		}
	}
	for _, u := range []int{0, 2, 63, 129, 131, -1} {
		if s.Has(u) {
			t.Errorf("Has(%d) = true", u)
		}
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	s, _ := New(100)
	for u := 3; u <= 100; u += 7 {
		s.Add(u)
	}
	r, err := FromWords(100, s.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(s) {
		t.Fatal("round trip not equal")
	}
}

func TestFromWordsRejectsBadShapes(t *testing.T) {
	if _, err := FromWords(100, make([]uint64, 1)); err == nil {
		t.Error("short word slice accepted")
	}
	if _, err := FromWords(100, make([]uint64, 3)); err == nil {
		t.Error("long word slice accepted")
	}
	words := make([]uint64, 2)
	words[1] = 1 << 40 // bit 104 > n=100
	if _, err := FromWords(100, words); err == nil {
		t.Error("tail bits beyond n accepted")
	}
	if _, err := FromWords(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEqualAndMinus(t *testing.T) {
	a, _ := New(64)
	b, _ := New(64)
	for u := 1; u <= 64; u++ {
		a.Add(u)
		if u%2 == 0 {
			b.Add(u)
		}
	}
	if a.Equal(b) {
		t.Fatal("unequal sets compare equal")
	}
	d, err := a.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 32 {
		t.Fatalf("minus count = %d, want 32", d.Count())
	}
	for u := 1; u <= 64; u++ {
		if d.Has(u) != (u%2 == 1) {
			t.Errorf("minus membership wrong at %d", u)
		}
	}
	var nilSet *Set
	if nilSet.Equal(a) || a.Equal(nil) {
		t.Error("nil compares equal to a concrete set")
	}
	if !nilSet.Equal(nil) {
		t.Error("nil != nil")
	}
	full, _ := All(10)
	if full.Count() != 10 || !full.Has(1) || !full.Has(10) {
		t.Error("All(10) wrong")
	}
}
