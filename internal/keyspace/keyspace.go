// Package keyspace represents subsets of a node keyspace 1..N as fixed-width
// bitmaps. It is the one currency the sharding layers trade in: the shard map
// materialises a group's owned set from its hash ranges, the serving engine
// restricts its tables to an owned set, the landmark codec embeds the set in
// the encoded tables, and the replication WAL ships owned-set changes as
// records. A leaf package with no repo dependencies, so all of those layers
// can share the type without import cycles.
package keyspace

import (
	"fmt"
	"math/bits"
)

// Set is a subset of the keyspace {1, …, N}, stored as a bitmap (bit u−1 for
// node u). The zero value is unusable; construct with New or FromWords.
// Mutation (Add) is construction-time only — published sets are treated as
// immutable by every consumer.
type Set struct {
	n     int
	words []uint64
	count int
}

// New returns an empty set over keyspace 1..n.
func New(n int) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("keyspace: n = %d", n)
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}, nil
}

// All returns the full set {1..n}.
func All(n int) (*Set, error) {
	s, err := New(n)
	if err != nil {
		return nil, err
	}
	for u := 1; u <= n; u++ {
		s.Add(u)
	}
	return s, nil
}

// FromWords reconstructs a set from its word representation (the codec
// direction). The word count must match n exactly and bits beyond n must be
// zero — a corrupt bitmap is rejected, never silently masked.
func FromWords(n int, words []uint64) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("keyspace: n = %d", n)
	}
	if want := (n + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("keyspace: %d words for n=%d, want %d", len(words), n, want)
	}
	if rem := n % 64; rem != 0 {
		if tail := words[len(words)-1] >> uint(rem); tail != 0 {
			return nil, fmt.Errorf("keyspace: bits set beyond n=%d", n)
		}
	}
	s := &Set{n: n, words: make([]uint64, len(words))}
	copy(s.words, words)
	for _, w := range s.words {
		s.count += bits.OnesCount64(w)
	}
	return s, nil
}

// N returns the keyspace size.
func (s *Set) N() int { return s.n }

// Count returns the number of owned keys.
func (s *Set) Count() int { return s.count }

// Has reports whether node u is in the set. Out-of-range u is simply absent.
// Allocation-free: safe on the serving hot path.
func (s *Set) Has(u int) bool {
	if u < 1 || u > s.n {
		return false
	}
	return s.words[(u-1)>>6]&(1<<uint((u-1)&63)) != 0
}

// Add inserts node u (construction-time only).
func (s *Set) Add(u int) {
	if u < 1 || u > s.n {
		panic(fmt.Sprintf("keyspace: add %d outside 1..%d", u, s.n))
	}
	w, b := (u-1)>>6, uint64(1)<<uint((u-1)&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.count++
	}
}

// Words returns the bitmap words (read-only; do not mutate).
func (s *Set) Words() []uint64 { return s.words }

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sets cover the same keyspace with the same
// members. Nil receivers/arguments compare equal only to nil (callers use nil
// as "unrestricted", which equals no concrete set).
func (s *Set) Equal(o *Set) bool {
	if s == nil || o == nil {
		return s == nil && o == nil
	}
	if s.n != o.n || s.count != o.count {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Minus returns s \ o (both over the same keyspace).
func (s *Set) Minus(o *Set) (*Set, error) {
	if o.n != s.n {
		return nil, fmt.Errorf("keyspace: minus over n=%d vs n=%d", s.n, o.n)
	}
	out := &Set{n: s.n, words: make([]uint64, len(s.words))}
	for i, w := range s.words {
		out.words[i] = w &^ o.words[i]
		out.count += bits.OnesCount64(out.words[i])
	}
	return out, nil
}

// String summarises the set for logs.
func (s *Set) String() string {
	return fmt.Sprintf("keyspace{%d of %d}", s.count, s.n)
}
