package serve

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

// sparseGraph builds the connected sparse family the tables tier targets —
// G(n,1/2) at tiered sizes would be millions of edges and diameter 2.
func sparseGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 6, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tieredEngine(t *testing.T, n int, seed int64) *Engine {
	t.Helper()
	eng, err := NewTieredEngine(sparseGraph(t, n, seed), "landmark")
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestTieredEngineServes: a tables-tier engine publishes a matrix-free
// snapshot that still answers every lookup with a real neighbour and a
// delivering route, and its DistEstimate upper-bounds within stretch 3.
func TestTieredEngineServes(t *testing.T) {
	eng := tieredEngine(t, 120, 5)
	if eng.Tier() != TierTables {
		t.Fatalf("tier = %q", eng.Tier())
	}
	snap := eng.Current()
	if snap.Tier != TierTables || snap.Dist != nil {
		t.Fatalf("snapshot tier=%q dist=%v", snap.Tier, snap.Dist)
	}
	if len(snap.TablesBytes()) == 0 {
		t.Fatal("no encoded tables on a tables-tier snapshot")
	}
	for src := 1; src <= 120; src += 7 {
		for dst := 1; dst <= 120; dst += 11 {
			if src == dst {
				continue
			}
			next, err := snap.NextHop(src, dst)
			if err != nil {
				t.Fatalf("NextHop(%d,%d): %v", src, dst, err)
			}
			if !snap.Graph.HasEdge(src, next) {
				t.Fatalf("NextHop(%d,%d) = %d: not a neighbour", src, dst, next)
			}
			tr, err := snap.Route(src, dst)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", src, dst, err)
			}
			if tr.Path[len(tr.Path)-1] != dst {
				t.Fatalf("Route(%d,%d) ended at %d", src, dst, tr.Path[len(tr.Path)-1])
			}
			est := snap.DistEstimate(src, dst)
			if est < 1 || tr.Hops > 3*est {
				t.Fatalf("estimate %d vs %d hops for (%d,%d)", est, tr.Hops, src, dst)
			}
		}
	}
}

// TestTieredMutateRebuildsDeterministically: a mutation republishes a new
// tables-tier snapshot, and rebuilding over the same topology reproduces the
// table bytes exactly — the determinism contract the arena CRC leans on.
func TestTieredMutateRebuildsDeterministically(t *testing.T) {
	eng := tieredEngine(t, 90, 9)
	old := eng.Current()
	snap, err := eng.Mutate(func(g *graph.Graph) error {
		if g.HasEdge(1, 2) {
			return g.RemoveEdge(1, 2)
		}
		return g.AddEdge(1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != old.Seq+1 || snap.Tier != TierTables {
		t.Fatalf("seq=%d tier=%q after mutate", snap.Seq, snap.Tier)
	}
	if bytes.Equal(snap.TablesBytes(), old.TablesBytes()) {
		t.Fatal("mutation did not change the encoded tables")
	}
	re, err := eng.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.TablesBytes(), snap.TablesBytes()) {
		t.Fatal("rebuild over the same topology changed the table bytes")
	}
}

// TestTieredArenaRoundTrip: a tables-tier snapshot persists through RTARENA2
// and restores into an engine serving identical answers, with a byte-identical
// re-encode and no distance matrix anywhere.
func TestTieredArenaRoundTrip(t *testing.T) {
	eng := tieredEngine(t, 100, 3)
	snap := eng.Current()
	path := filepath.Join(t.TempDir(), "tiered.rtarena")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenArena(buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != 2 {
		t.Fatalf("arena version = %d, want 2", a.Version())
	}
	if a.PackedDist() != nil {
		t.Fatal("tables-tier arena reports a packed distance matrix")
	}
	if !bytes.Equal(a.Tables(), snap.TablesBytes()) {
		t.Fatal("arena tables differ from the snapshot's")
	}

	restored, err := RestoreEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tier() != TierTables {
		t.Fatalf("restored tier = %q", restored.Tier())
	}
	rs := restored.Current()
	if rs.Seq != snap.Seq || rs.Dist != nil {
		t.Fatalf("restored seq=%d dist=%v", rs.Seq, rs.Dist)
	}
	for src := 1; src <= 100; src += 13 {
		for dst := 1; dst <= 100; dst += 17 {
			if src == dst {
				continue
			}
			a, aerr := snap.NextHop(src, dst)
			b, berr := rs.NextHop(src, dst)
			if a != b || (aerr == nil) != (berr == nil) {
				t.Fatalf("NextHop(%d,%d): %d/%v vs restored %d/%v", src, dst, a, aerr, b, berr)
			}
			if snap.DistEstimate(src, dst) != rs.DistEstimate(src, dst) {
				t.Fatalf("DistEstimate(%d,%d) differs after restore", src, dst)
			}
		}
	}
	reenc := EncodeArena(&SnapshotData{
		Seq: rs.Seq, Scheme: rs.Scheme, Graph: rs.Graph, Ports: rs.Ports, Tables: rs.TablesBytes(),
	})
	if !bytes.Equal(reenc, buf) {
		t.Fatal("restored snapshot does not re-encode byte-identically")
	}
}

// TestTieredArenaGoldenFile pins the RTARENA2 on-disk bytes the same way the
// RTARENA1 golden does: any layout drift fails here, not at a restart.
func TestTieredArenaGoldenFile(t *testing.T) {
	const golden = "testdata/snapshot_n32_seed2_landmark.rtarena"
	snap := tieredEngine(t, 32, 2).Current()
	want := EncodeArena(&SnapshotData{
		Seq: snap.Seq, Scheme: snap.Scheme, Graph: snap.Graph, Ports: snap.Ports, Tables: snap.TablesBytes(),
	})
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file unreadable (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden RTARENA2 differs from seeded rebuild (%d vs %d bytes)", len(got), len(want))
	}
	a, err := OpenArena(got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scheme() != "landmark" || a.N() != 32 || a.Version() != 2 {
		t.Fatalf("golden header: scheme=%q n=%d version=%d", a.Scheme(), a.N(), a.Version())
	}
}

// TestTieredArenaRejectsCorruption: the full truncation and bit-flip matrix
// over an RTARENA2 buffer — the tiered layout inherits the v1 rule that
// nothing in the arena is slack the CRC ignores.
func TestTieredArenaRejectsCorruption(t *testing.T) {
	snap := tieredEngine(t, 32, 2).Current()
	buf := EncodeArena(&SnapshotData{
		Seq: snap.Seq, Scheme: snap.Scheme, Graph: snap.Graph, Ports: snap.Ports, Tables: snap.TablesBytes(),
	})
	t.Run("truncation", func(t *testing.T) {
		for l := 0; l < len(buf); l++ {
			if _, err := OpenArena(buf[:l]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", l)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := 0; i < len(buf); i++ {
			mut := bytes.Clone(buf)
			mut[i] ^= 1 << uint(i%8)
			if _, err := OpenArena(mut); err == nil {
				t.Fatalf("bit flip at byte %d accepted", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := OpenArena(append(bytes.Clone(buf), 0xEE)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
}

// TestArenaVersionNegotiation pins cross-version behaviour: full-tier
// snapshots still encode as RTARENA1 byte-for-byte (a pre-tiering reader
// keeps working), tables-tier snapshots announce RTARENA2, and the legacy
// framed codec refuses tables-tier data outright.
func TestArenaVersionNegotiation(t *testing.T) {
	full := snapshotData(t, 24, 6, "fulltable")
	fb := EncodeArena(full)
	if string(fb[:8]) != "RTARENA1" {
		t.Fatalf("full-tier magic %q", fb[:8])
	}
	a, err := OpenArena(fb)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != 1 || a.Tables() != nil {
		t.Fatalf("full-tier arena: version=%d tables=%v", a.Version(), a.Tables())
	}

	snap := tieredEngine(t, 40, 6).Current()
	tsd := &SnapshotData{
		Seq: snap.Seq, Scheme: snap.Scheme, Graph: snap.Graph, Ports: snap.Ports, Tables: snap.TablesBytes(),
	}
	tb := EncodeArena(tsd)
	if string(tb[:8]) != "RTARENA2" {
		t.Fatalf("tables-tier magic %q", tb[:8])
	}
	if err := EncodeSnapshotData(&bytes.Buffer{}, tsd); err == nil {
		t.Fatal("legacy framed codec accepted a tables-tier snapshot")
	}
	// Magic/version cross-wiring must fail: v2 bytes claiming v1 magic and
	// vice versa die on the version field (and then the CRC).
	swapped := bytes.Clone(tb)
	copy(swapped, "RTARENA1")
	if _, err := OpenArena(swapped); err == nil {
		t.Fatal("v2 body under v1 magic accepted")
	}
}

// TestAdoptRejectsTierMismatch: replication adoption across tiers is refused
// in both directions — a tables blob cannot land in a full-tier engine nor a
// matrix in a tables-tier engine.
func TestAdoptRejectsTierMismatch(t *testing.T) {
	g := sparseGraph(t, 60, 4)
	fullEng, err := NewEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	tabEng, err := NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	fullSnap, tabSnap := fullEng.Current(), tabEng.Current()
	tabSD := &SnapshotData{Seq: 9, Scheme: "landmark", Graph: tabSnap.Graph, Ports: tabSnap.Ports, Tables: tabSnap.TablesBytes()}
	if err := fullEng.Adopt(tabSD); err == nil {
		t.Fatal("full-tier engine adopted a tables-tier snapshot")
	}
	fullSD := &SnapshotData{Seq: 9, Scheme: "landmark", Graph: fullSnap.Graph, Ports: fullSnap.Ports, Dist: fullSnap.Dist}
	if err := tabEng.Adopt(fullSD); err == nil {
		t.Fatal("tables-tier engine adopted a full-tier snapshot")
	}
	if err := tabEng.Adopt(tabSD); err != nil {
		t.Fatalf("same-tier adoption failed: %v", err)
	}
	if got := tabEng.Current().Seq; got != 9 {
		t.Fatalf("adopted seq = %d", got)
	}
}

// TestTieredSnapshotNextHopZeroAlloc pins the acceptance contract: the
// tables-tier hot path — cluster binary search, landmark fallback,
// DistEstimate — allocates nothing per lookup.
func TestTieredSnapshotNextHopZeroAlloc(t *testing.T) {
	skipIfRace(t)
	snap := tieredEngine(t, 200, 11).Current()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := snap.NextHop(1, 150); err != nil {
			t.Fatal(err)
		}
		if snap.DistEstimate(1, 150) < 1 {
			t.Fatal("bad estimate")
		}
	})
	if allocs != 0 {
		t.Fatalf("tables-tier NextHop allocates %.1f/op, want 0", allocs)
	}
}

// TestTieredServerLookupBatchZeroAlloc: the whole sharded batch pipeline over
// a tables-tier snapshot stays allocation-free in steady state, same as the
// full tier.
func TestTieredServerLookupBatchZeroAlloc(t *testing.T) {
	skipIfRace(t)
	eng := tieredEngine(t, 200, 11)
	s := NewServer(eng, ServerOptions{Shards: 4, StretchSampleEvery: -1})
	t.Cleanup(s.Close)
	pairs := make([][2]int, 16)
	for i := range pairs {
		pairs[i] = [2]int{i%200 + 1, (i*13 + 57) % 200}
		if pairs[i][1] < 1 {
			pairs[i][1] = 200
		}
		if pairs[i][0] == pairs[i][1] {
			pairs[i][1] = pairs[i][1]%200 + 1
		}
	}
	out := make([]Result, len(pairs))
	for i := 0; i < 32; i++ {
		if err := s.LookupBatch(pairs, out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := s.LookupBatch(pairs, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("tables-tier LookupBatch allocates %.1f/op, want 0", allocs)
	}
}

// TestAdoptRejectionLeavesEngineServing pins the no-partial-adoption
// contract: a rejected Adopt — wrong scheme, wrong tier, or a corrupt table
// blob — must leave the previous snapshot serving with Seq and the swap
// counter untouched. Replication leans on this: a replica that receives a bad
// state fetch keeps answering from its last good tables.
func TestAdoptRejectionLeavesEngineServing(t *testing.T) {
	eng := tieredEngine(t, 60, 9)
	before := eng.Current()
	swapsBefore := eng.Swaps()

	good := &SnapshotData{
		Seq: before.Seq + 7, Scheme: before.Scheme,
		Graph: before.Graph, Ports: before.Ports, Tables: before.TablesBytes(),
	}

	// Scheme mismatch.
	bad := *good
	bad.Scheme = "fulltable"
	if err := eng.Adopt(&bad); err == nil {
		t.Fatal("scheme mismatch adopted")
	}
	// Tier mismatch: a matrix-bearing payload on a tables-tier engine.
	full := snapshotData(t, 24, 6, "landmark")
	full.Seq = before.Seq + 7
	if err := eng.Adopt(full); err == nil {
		t.Fatal("full-tier snapshot adopted by tables-tier engine")
	}
	// Corrupt tables: flip one header byte so DecodeTableScheme rejects it.
	corrupt := *good
	corrupt.Tables = bytes.Clone(good.Tables)
	corrupt.Tables[8] ^= 0x40
	if err := eng.Adopt(&corrupt); err == nil {
		t.Fatal("corrupt table blob adopted")
	}
	// Truncated tables.
	truncated := *good
	truncated.Tables = good.Tables[:len(good.Tables)/2]
	if err := eng.Adopt(&truncated); err == nil {
		t.Fatal("truncated table blob adopted")
	}

	if cur := eng.Current(); cur != before {
		t.Fatalf("rejected adoption swapped the snapshot: seq %d → %d", before.Seq, cur.Seq)
	}
	if eng.Swaps() != swapsBefore {
		t.Fatalf("rejected adoption moved the swap counter: %d → %d", swapsBefore, eng.Swaps())
	}
	if _, err := eng.Current().NextHop(1, 50); err != nil {
		t.Fatalf("engine stopped serving after rejected adoptions: %v", err)
	}

	// And the control: the untouched payload still adopts cleanly.
	if err := eng.Adopt(good); err != nil {
		t.Fatalf("clean adoption failed: %v", err)
	}
	if got := eng.Current().Seq; got != good.Seq {
		t.Fatalf("adopted seq = %d, want %d", got, good.Seq)
	}
}
