package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("counter not memoised by name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	r.GaugeFunc("gf", func() int64 { return 99 })
	snap := r.Snapshot()
	if snap.Counters["c"] != 42 || snap.Gauges["g"] != 4 || snap.Gauges["gf"] != 99 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	got := map[int64]uint64{}
	for _, b := range s.Buckets {
		got[b.Le] = b.N
	}
	// ≤10: {1,10}; ≤100: {11,100}; ≤1000: {}; overflow: {5000}.
	if got[10] != 2 || got[100] != 2 || got[-1] != 1 {
		t.Fatalf("bucket layout: %+v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 12)) // 1,2,4,…,2048
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	// True p50 = 50 → bucket le=64; true p99 = 99 → bucket le=128.
	if q := h.Quantile(0.5); q != 64 {
		t.Fatalf("p50 = %d, want 64", q)
	}
	if q := h.Quantile(0.99); q != 128 {
		t.Fatalf("p99 = %d, want 128", q)
	}
	// Quantiles are clamped, never panic.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("quantile ordering violated at clamp bounds")
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Observe(1 << 40)
	if q := h.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %d, want last finite bound 10", q)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(1024, 4)
	want := []int64{1024, 2048, 4096, 8192}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if got := ExponentialBounds(0, 1); got[0] != 1 {
		t.Fatalf("start clamp: %v", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Histogram("lat", []int64{1, 2}).Observe(1)
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("registry JSON does not round-trip: %v", err)
	}
	if decoded.Counters["hits"] != 3 || decoded.Histograms["lat"].Count != 1 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines; run under -race this pins the lock-free hot path.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", ExponentialBounds(1, 10))
	c := r.Counter("c")
	var wg sync.WaitGroup
	const workers, per = 8, 10_000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per || c.Value() != workers*per {
		t.Fatalf("count = %d, counter = %d", h.Count(), c.Value())
	}
}
