// Package metrics is the serving layer's zero-dependency instrumentation:
// atomic counters and gauges, fixed-bucket histograms with quantile
// estimation, and a named registry that snapshots to JSON.
//
// Everything is lock-free on the hot path — a counter bump or histogram
// observation is one atomic add — so recording a metric never serialises the
// sharded lookup workers it instruments. Snapshots are read-only views taken
// with atomic loads; they may straddle concurrent updates (per-metric values
// are each internally consistent, the set is not a global cut), which is the
// usual monitoring contract.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (e.g. queue depth, swap sequence).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, with one implicit overflow bucket
// past the last bound. Bounds are immutable after construction, so Observe is
// a binary search plus two atomic adds.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending inclusive upper
// bounds. It panics on an empty or unsorted bound list (a programming error,
// not an input error).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// ExponentialBounds returns n strictly ascending bounds starting at start and
// doubling each step — the standard latency bucket layout.
func ExponentialBounds(start int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	bounds := make([]int64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucket returns the index of the first bound ≥ v (len(bounds) = overflow).
func (h *Histogram) bucket(v int64) int {
	return sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket holding the q·count-th observation; the overflow bucket reports the
// last finite bound. Returns 0 when the histogram is empty. The estimate is
// exact to bucket resolution — with doubling bounds, within 2× of the true
// quantile, which is the precision latency reporting needs.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	// Buckets lists cumulative-free per-bucket counts; the final entry
	// (Le = -1) is the overflow bucket.
	Buckets []BucketSnapshot `json:"buckets"`
	P50     int64            `json:"p50"`
	P90     int64            `json:"p90"`
	P99     int64            `json:"p99"`
}

// BucketSnapshot is one histogram bucket: count of observations ≤ Le
// (exclusive of lower buckets); Le = -1 marks the overflow bucket.
type BucketSnapshot struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Buckets: make([]BucketSnapshot, 0, len(h.counts)),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue // sparse form: empty buckets carry no information
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketSnapshot{Le: le, N: n})
	}
	return s
}

// Registry is a named collection of metrics. Registration is mutex-guarded
// (it happens once at server construction); reads on the hot path go straight
// to the atomic metric values.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time —
// used for values owned elsewhere (e.g. the engine's swap sequence).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON form of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// MarshalJSON renders the registry's snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// String renders the snapshot compactly for logs.
func (r *Registry) String() string {
	blob, err := r.MarshalJSON()
	if err != nil {
		return fmt.Sprintf("metrics: %v", err)
	}
	return string(blob)
}
