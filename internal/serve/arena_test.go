package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"testing"

	"routetab/internal/gengraph"
)

func snapshotData(t *testing.T, n int, seed int64, scheme string) *SnapshotData {
	t.Helper()
	snap := buildTestEngine(t, n, seed, scheme).Current()
	return &SnapshotData{
		Seq:    snap.Seq,
		Scheme: snap.Scheme,
		Graph:  snap.Graph,
		Ports:  snap.Ports,
		Dist:   snap.Dist,
	}
}

// TestArenaRoundTrip: EncodeArena → OpenArena → SnapshotData must reproduce
// graph, ports, packed distances, scheme, and Seq exactly, and encoding must
// be byte-identical on re-encode — the determinism contract every downstream
// CRC comparison (anti-entropy digests, golden files) leans on.
func TestArenaRoundTrip(t *testing.T) {
	for _, scheme := range []string{"fulltable", "compact"} {
		sd := snapshotData(t, 48, 3, scheme)
		buf := EncodeArena(sd)
		a, err := OpenArena(buf)
		if err != nil {
			t.Fatalf("%s: open: %v", scheme, err)
		}
		if a.Seq() != sd.Seq || a.Scheme() != sd.Scheme || a.N() != sd.Graph.N() || a.M() != sd.Graph.M() {
			t.Fatalf("%s: header (%d,%q,%d,%d)", scheme, a.Seq(), a.Scheme(), a.N(), a.M())
		}
		if !bytes.Equal(a.PackedDist(), sd.Dist.Packed()) {
			t.Fatalf("%s: packed distances differ", scheme)
		}
		got, err := a.SnapshotData()
		if err != nil {
			t.Fatalf("%s: materialise: %v", scheme, err)
		}
		if !got.Graph.Equal(sd.Graph) {
			t.Fatalf("%s: graph does not round-trip", scheme)
		}
		for u := 1; u <= sd.Graph.N(); u++ {
			av, bv := sd.Ports.NeighborsByPort(u), got.Ports.NeighborsByPort(u)
			if len(av) != len(bv) {
				t.Fatalf("%s: node %d port count %d vs %d", scheme, u, len(av), len(bv))
			}
			for p := range av {
				if av[p] != bv[p] {
					t.Fatalf("%s: node %d port %d: %d vs %d", scheme, u, p, av[p], bv[p])
				}
			}
		}
		if !bytes.Equal(got.Dist.Packed(), sd.Dist.Packed()) {
			t.Fatalf("%s: distances do not round-trip", scheme)
		}
		if !bytes.Equal(EncodeArena(sd), buf) {
			t.Fatalf("%s: encoding is not deterministic", scheme)
		}
		// The distance section is adopted, not copied: a zero-copy restore
		// must alias the arena buffer.
		if &got.Dist.Packed()[0] != &a.PackedDist()[0] {
			t.Fatalf("%s: materialised distances are a copy, want arena alias", scheme)
		}
	}
}

// TestArenaMatchesLegacy pins the cross-codec determinism contract: the same
// logical snapshot carried by RTARENA1 and RTSNAP1 must restore with the same
// Seq and the same packed-distance CRC, so a replica adopting an arena body
// converges to the same anti-entropy fingerprint as one replaying legacy
// frames.
func TestArenaMatchesLegacy(t *testing.T) {
	sd := snapshotData(t, 32, 7, "fulltable")

	var legacy bytes.Buffer
	if err := EncodeSnapshotData(&legacy, sd); err != nil {
		t.Fatal(err)
	}
	fromLegacy, codec, err := DecodeSnapshotCodec(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecLegacy {
		t.Fatalf("legacy decode reported codec %q", codec)
	}

	fromArena, codec, err := DecodeSnapshotCodec(bytes.NewReader(EncodeArena(sd)))
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecArena {
		t.Fatalf("arena decode reported codec %q", codec)
	}

	if fromArena.Seq != fromLegacy.Seq {
		t.Fatalf("seq: arena %d, legacy %d", fromArena.Seq, fromLegacy.Seq)
	}
	aCRC := crc32.Checksum(fromArena.Dist.Packed(), crcTable)
	lCRC := crc32.Checksum(fromLegacy.Dist.Packed(), crcTable)
	if aCRC != lCRC {
		t.Fatalf("packed-distance CRC: arena %08x, legacy %08x", aCRC, lCRC)
	}
	if !fromArena.Graph.Equal(fromLegacy.Graph) {
		t.Fatal("graphs differ across codecs")
	}
	// Re-encoding the legacy-restored snapshot as an arena must be
	// byte-identical to encoding the original — restore loses nothing.
	if !bytes.Equal(EncodeArena(fromLegacy), EncodeArena(sd)) {
		t.Fatal("legacy round-trip changes the arena encoding")
	}
}

// TestArenaGoldenFile pins the RTARENA1 on-disk bytes: a checked-in arena of
// a small seeded topology must stay byte-identical to a fresh encode, so any
// layout change fails loudly here instead of at a production restart.
func TestArenaGoldenFile(t *testing.T) {
	const golden = "testdata/snapshot_n16_seed2_fulltable.rtarena"
	sd := snapshotData(t, 16, 2, "fulltable")
	want := EncodeArena(sd)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file unreadable (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden arena differs from seeded rebuild (%d vs %d bytes)", len(got), len(want))
	}
	a, err := OpenArena(got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scheme() != "fulltable" || a.N() != 16 {
		t.Fatalf("golden header: scheme=%q n=%d", a.Scheme(), a.N())
	}
}

// TestOpenArenaRejectsCorruption walks the failure surface: every truncation
// length and every flipped bit must be rejected — nothing in the arena is
// slack the CRC ignores (only padding bytes, which are covered too since the
// checksum spans the full buffer past the CRC field).
func TestOpenArenaRejectsCorruption(t *testing.T) {
	buf := EncodeArena(snapshotData(t, 16, 2, "fulltable"))

	t.Run("truncation", func(t *testing.T) {
		for l := 0; l < len(buf); l++ {
			if _, err := OpenArena(buf[:l]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", l)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := 0; i < len(buf); i++ {
			mut := bytes.Clone(buf)
			mut[i] ^= 1 << uint(i%8)
			if _, err := OpenArena(mut); err == nil {
				t.Fatalf("bit flip at byte %d accepted", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := OpenArena(append(bytes.Clone(buf), 0xEE)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
}

// TestReadArenaRejectsOversize: a streamed header advertising an absurd total
// must be rejected before any allocation — the stream-decode guard against a
// corrupt or hostile peer.
func TestReadArenaRejectsOversize(t *testing.T) {
	hdr := make([]byte, 16)
	copy(hdr, arenaMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(maxArenaLen)+1)
	if _, err := readArena(bytes.NewReader(hdr[8:]), arenaMagic); err == nil {
		t.Fatal("oversize total accepted")
	}
	binary.LittleEndian.PutUint64(hdr[8:], uint64(arenaHeaderLen)-1)
	if _, err := readArena(bytes.NewReader(hdr[8:]), arenaMagic); err == nil {
		t.Fatal("undersize total accepted")
	}
}

// FuzzOpenArena mirrors the walstore fuzz pattern: whatever bytes arrive,
// OpenArena must either reject them or return an arena whose materialisation
// succeeds with consistent invariants — never panic, never over-read.
func FuzzOpenArena(f *testing.F) {
	g, err := gengraph.GnHalf(12, rand.New(rand.NewSource(4)))
	if err != nil {
		f.Fatal(err)
	}
	eng, err := NewEngine(g, "fulltable")
	if err != nil {
		f.Fatal(err)
	}
	snap := eng.Current()
	valid := EncodeArena(&SnapshotData{
		Seq: snap.Seq, Scheme: snap.Scheme, Graph: snap.Graph, Ports: snap.Ports, Dist: snap.Dist,
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RTARENA1"))
	f.Add([]byte{})
	mut := bytes.Clone(valid)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := OpenArena(data)
		if err != nil {
			return
		}
		sd, err := a.SnapshotData()
		if err != nil {
			return
		}
		if sd.Graph.N() != a.N() || sd.Graph.M() != a.M() {
			t.Fatalf("inconsistent materialisation: (%d,%d) vs (%d,%d)",
				sd.Graph.N(), sd.Graph.M(), a.N(), a.M())
		}
	})
}
