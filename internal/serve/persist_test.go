package serve

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"routetab/internal/gengraph"
)

func buildTestEngine(t *testing.T, n int, seed int64, scheme string) *Engine {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSnapshotRoundTrip: encode → decode must reproduce graph, ports, packed
// distances, scheme, and Seq exactly, and encoding must be deterministic
// (byte-identical on re-encode) — the property the kill+restore recovery
// leans on.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, scheme := range []string{"fulltable", "compact"} {
		eng := buildTestEngine(t, 48, 3, scheme)
		snap := eng.Current()

		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, snap); err != nil {
			t.Fatal(err)
		}
		sd, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", scheme, err)
		}
		if sd.Seq != snap.Seq || sd.Scheme != snap.Scheme {
			t.Fatalf("%s: head (%d,%q), want (%d,%q)", scheme, sd.Seq, sd.Scheme, snap.Seq, snap.Scheme)
		}
		if !sd.Graph.Equal(snap.Graph) {
			t.Fatalf("%s: graph does not round-trip", scheme)
		}
		if !bytes.Equal(sd.Dist.Packed(), snap.Dist.Packed()) {
			t.Fatalf("%s: packed distances do not round-trip", scheme)
		}
		for u := 1; u <= snap.Graph.N(); u++ {
			a, b := snap.Ports.NeighborsByPort(u), sd.Ports.NeighborsByPort(u)
			if len(a) != len(b) {
				t.Fatalf("%s: node %d port count %d vs %d", scheme, u, len(a), len(b))
			}
			for p := range a {
				if a[p] != b[p] {
					t.Fatalf("%s: node %d port %d: %d vs %d", scheme, u, p, a[p], b[p])
				}
			}
		}

		var again bytes.Buffer
		if err := EncodeSnapshot(&again, snap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("%s: encoding is not deterministic", scheme)
		}
	}
}

// TestSnapshotGoldenFile pins the on-disk format: a checked-in snapshot of a
// small seeded topology must stay decodable, so a format change that breaks
// old files fails loudly here instead of at a production restart.
func TestSnapshotGoldenFile(t *testing.T) {
	const golden = "testdata/snapshot_n16_seed2_fulltable.rtsnap"
	eng := buildTestEngine(t, 16, 2, "fulltable")
	snap := eng.Current()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := SaveSnapshot(golden, snap); err != nil {
			t.Fatal(err)
		}
	}
	sd, err := LoadSnapshot(golden)
	if err != nil {
		t.Fatalf("golden file unreadable (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if sd.Scheme != "fulltable" || sd.Graph.N() != 16 {
		t.Fatalf("golden header: scheme=%q n=%d", sd.Scheme, sd.Graph.N())
	}
	// The golden topology is the same pure function of (n, seed) this test
	// just rebuilt, so the persisted bytes must match the fresh build.
	if !sd.Graph.Equal(snap.Graph) {
		t.Fatal("golden graph differs from seeded rebuild")
	}
	if !bytes.Equal(sd.Dist.Packed(), snap.Dist.Packed()) {
		t.Fatal("golden distances differ from seeded rebuild")
	}
}

// TestSaveLoadAtomicOverwrite: repeated saves to one path leave a readable,
// latest-wins file (the temp-file + rename contract).
func TestSaveLoadAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.rtsnap")
	eng := buildTestEngine(t, 24, 5, "fulltable")
	if err := SaveSnapshot(path, eng.Current()); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	sd, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Seq != snap.Seq {
		t.Fatalf("loaded seq %d, want latest %d", sd.Seq, snap.Seq)
	}
}

// TestRestoreEngine: a restored engine must serve the persisted snapshot with
// identical Seq and byte-identical packed distances — and continue the Seq
// sequence on its next publish instead of restarting at 1.
func TestRestoreEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.rtsnap")
	eng := buildTestEngine(t, 32, 7, "compact")
	if err := eng.EnablePersist(path); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reload(); err != nil { // bump Seq past the initial build
		t.Fatal(err)
	}
	want := eng.Current()

	restored, err := RestoreEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Current()
	if got.Seq != want.Seq {
		t.Fatalf("restored Seq %d, want %d", got.Seq, want.Seq)
	}
	if !bytes.Equal(got.Dist.Packed(), want.Dist.Packed()) {
		t.Fatal("restored packed distances not byte-identical")
	}
	if !got.Graph.Equal(want.Graph) {
		t.Fatal("restored graph differs")
	}
	// Restored answers must match the original for every pair.
	n := want.N()
	for src := 1; src <= n; src++ {
		for dst := 1; dst <= n; dst++ {
			if src == dst {
				continue
			}
			a, errA := want.NextHop(src, dst)
			b, errB := got.NextHop(src, dst)
			if (errA == nil) != (errB == nil) || a != b {
				t.Fatalf("NextHop(%d,%d): restored %d,%v vs original %d,%v", src, dst, b, errB, a, errA)
			}
		}
	}
	next, err := restored.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != want.Seq+1 {
		t.Fatalf("post-restore publish Seq %d, want %d", next.Seq, want.Seq+1)
	}
}

// TestDecodeRejectsCorruption: every single-byte corruption of a valid file
// must fail decoding (checksummed framing), never silently yield a snapshot.
func TestDecodeRejectsCorruption(t *testing.T) {
	eng := buildTestEngine(t, 16, 2, "fulltable")
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, eng.Current()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Truncations at every prefix length.
	for cut := 0; cut < len(valid); cut += 97 {
		if _, err := DecodeSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Bit flips sampled across the file.
	for off := 0; off < len(valid); off += 13 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		if sd, err := DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			// The only acceptable silent flip is none: CRC must catch it.
			t.Fatalf("bit flip at %d decoded to %+v", off, sd)
		}
	}
}

// FuzzDecodeSnapshot: arbitrary bytes must never panic the decoder, and
// anything that decodes must be internally consistent enough to re-encode.
func FuzzDecodeSnapshot(f *testing.F) {
	eng, err := func() (*Engine, error) {
		g, err := gengraph.GnHalf(12, rand.New(rand.NewSource(1)))
		if err != nil {
			return nil, err
		}
		return NewEngine(g, "fulltable")
	}()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, eng.Current()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RTSNAP1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sd.Graph == nil || sd.Ports == nil || sd.Dist == nil {
			t.Fatalf("decode returned nil fields without error")
		}
		if sd.Graph.N() != sd.Dist.N() {
			t.Fatalf("decoded n mismatch: graph %d, dist %d", sd.Graph.N(), sd.Dist.N())
		}
	})
}
