package serve

import (
	"fmt"
	"sort"

	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/interval"
	"routetab/internal/shortestpath"
)

// builders maps scheme names to their constructors — the one registry the
// serving engine, the resilience sweep, and the CLI all dispatch through.
var builders = map[string]func(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error){
	"fulltable": func(g *graph.Graph, ports *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return fulltable.Build(g, ports)
	},
	"compact": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return compact.Build(g, compact.DefaultOptions())
	},
	"hub": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return hub.Build(g, 1)
	},
	"interval": func(g *graph.Graph, ports *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return interval.Build(g, ports, 1)
	},
	"fullinfo": func(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error) {
		return fullinfo.Build(g, ports, dm)
	},
	"centers": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return centers.Build(g, 1)
	},
}

// shortestPathSchemes names the constructions that route along exact shortest
// paths, so every next hop must strictly decrease the distance to the
// destination — the property strict lookup validation checks.
var shortestPathSchemes = map[string]bool{
	"fulltable": true,
	"compact":   true,
	"fullinfo":  true,
}

// SchemeNames lists the scheme names BuildScheme understands, sorted.
func SchemeNames() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KnownScheme reports whether name is a buildable scheme.
func KnownScheme(name string) bool {
	_, ok := builders[name]
	return ok
}

// IsShortestPath reports whether the named scheme guarantees shortest-path
// routes (stretch exactly 1), making strict next-hop validation sound.
func IsShortestPath(name string) bool { return shortestPathSchemes[name] }

// BuildScheme constructs the named scheme against g, its port assignment, and
// the graph's all-pairs matrix (only some builders consume dm).
func BuildScheme(name string, g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error) {
	build, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown scheme %q (have %v)", name, SchemeNames())
	}
	return build(g, ports, dm)
}
