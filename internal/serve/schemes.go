package serve

import (
	"fmt"
	"sort"

	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/interval"
	"routetab/internal/schemes/landmark"
	"routetab/internal/shortestpath"
)

// builders maps scheme names to their constructors — the one registry the
// serving engine, the resilience sweep, and the CLI all dispatch through.
var builders = map[string]func(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error){
	"fulltable": func(g *graph.Graph, ports *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return fulltable.Build(g, ports)
	},
	"compact": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return compact.Build(g, compact.DefaultOptions())
	},
	"hub": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return hub.Build(g, 1)
	},
	"interval": func(g *graph.Graph, ports *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return interval.Build(g, ports, 1)
	},
	"fullinfo": func(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error) {
		return fullinfo.Build(g, ports, dm)
	},
	"centers": func(g *graph.Graph, _ *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return centers.Build(g, 1)
	},
	"landmark": func(g *graph.Graph, ports *graph.Ports, _ *shortestpath.Distances) (routing.Scheme, error) {
		return landmark.Build(g, ports, landmark.DefaultOptions())
	},
}

// DistEstimator is the distance side-channel a tables-tier snapshot serves
// from: an upper bound on d(u, v) computable from the scheme's own tables,
// allocation-free. Exact-distance callers (Result.Dist/NextDist, detour
// budgets) degrade to these bounds when the all-pairs matrix is absent.
type DistEstimator interface {
	EstimateDist(u, v int) int
}

// TableScheme is the contract a scheme must satisfy to serve the tables tier:
// beyond routing, it estimates distances from its own tables and serialises
// them deterministically so snapshots can persist and ship the tables instead
// of the O(n²) matrix.
type TableScheme interface {
	routing.Scheme
	DistEstimator
	EncodeTables() []byte
}

// tableBuilders registers the tables-tier constructions: build from topology
// alone (no all-pairs matrix — that absence is the tier's point) and decode
// from a persisted table blob.
var tableBuilders = map[string]struct {
	build  func(g *graph.Graph, ports *graph.Ports) (TableScheme, error)
	decode func(g *graph.Graph, ports *graph.Ports, tables []byte) (TableScheme, error)
}{
	"landmark": {
		build: func(g *graph.Graph, ports *graph.Ports) (TableScheme, error) {
			return landmark.Build(g, ports, landmark.DefaultOptions())
		},
		decode: func(g *graph.Graph, ports *graph.Ports, tables []byte) (TableScheme, error) {
			return landmark.DecodeTables(g, ports, tables)
		},
	},
}

// TableCapable reports whether the named scheme can serve the tables tier.
func TableCapable(name string) bool {
	_, ok := tableBuilders[name]
	return ok
}

// BuildTableScheme constructs the named scheme for the tables tier, without
// an all-pairs matrix.
func BuildTableScheme(name string, g *graph.Graph, ports *graph.Ports) (TableScheme, error) {
	reg, ok := tableBuilders[name]
	if !ok {
		return nil, fmt.Errorf("serve: scheme %q cannot serve the tables tier", name)
	}
	return reg.build(g, ports)
}

// DecodeTableScheme reconstructs a tables-tier scheme from its persisted
// table blob against the same topology.
func DecodeTableScheme(name string, g *graph.Graph, ports *graph.Ports, tables []byte) (TableScheme, error) {
	reg, ok := tableBuilders[name]
	if !ok {
		return nil, fmt.Errorf("serve: scheme %q cannot serve the tables tier", name)
	}
	return reg.decode(g, ports, tables)
}

// shortestPathSchemes names the constructions that route along exact shortest
// paths, so every next hop must strictly decrease the distance to the
// destination — the property strict lookup validation checks.
var shortestPathSchemes = map[string]bool{
	"fulltable": true,
	"compact":   true,
	"fullinfo":  true,
}

// SchemeNames lists the scheme names BuildScheme understands, sorted.
func SchemeNames() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KnownScheme reports whether name is a buildable scheme.
func KnownScheme(name string) bool {
	_, ok := builders[name]
	return ok
}

// IsShortestPath reports whether the named scheme guarantees shortest-path
// routes (stretch exactly 1), making strict next-hop validation sound.
func IsShortestPath(name string) bool { return shortestPathSchemes[name] }

// BuildScheme constructs the named scheme against g, its port assignment, and
// the graph's all-pairs matrix (only some builders consume dm).
func BuildScheme(name string, g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error) {
	build, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown scheme %q (have %v)", name, SchemeNames())
	}
	return build(g, ports, dm)
}
