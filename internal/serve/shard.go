// Keyspace-restricted serving: a shard group answers lookups only for source
// nodes it owns. The engine carries the intended owned set; on the tables
// tier every rebuild restricts the freshly built scheme (dropping non-owned
// per-source rows before encoding, so persisted and shipped state shrinks
// with the shard), while on the full tier the matrix stays whole and
// ownership is enforced at answer time only. Either way the published
// snapshot knows its owned set and the hot path refuses foreign sources with
// ErrWrongShard — an honest, allocation-free redirect signal the shard router
// (internal/cluster/shard) turns into "try the owning group".
package serve

import (
	"errors"
	"fmt"

	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/shortestpath"
)

// ErrWrongShard reports a lookup whose source node is outside the serving
// group's owned keyspace. The answer is definite — this member will never
// own the source until a rebalance says so — and carries no routing
// information; the caller must re-ask the owning shard group.
var ErrWrongShard = errors.New("serve: source not owned by this shard")

// Restricter is implemented by table schemes that can drop non-owned
// per-source rows (e.g. landmark.Scheme.Restrict). The tables tier requires
// it when an engine is given an owned set.
type Restricter interface {
	Restrict(owned *keyspace.Set) error
}

// Owned returns the snapshot's owned source set, or nil when the snapshot
// serves every source.
func (s *Snapshot) Owned() *keyspace.Set { return s.owned }

// Owned returns the engine's current owned source set (nil = unrestricted).
// The returned set is shared and must be treated as read-only.
func (e *Engine) Owned() *keyspace.Set {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.owned
}

// NewShardEngine builds an engine whose snapshots serve only the owned
// sources, at either tier. owned == nil degrades to NewEngine /
// NewTieredEngine. On the tables tier the built scheme must implement
// Restricter; the restriction happens before encoding, so the snapshot's
// table blob (what replication ships and resync re-sends) contains only the
// owned rows.
func NewShardEngine(g *graph.Graph, schemeName, tier string, owned *keyspace.Set) (*Engine, error) {
	switch tier {
	case TierFull:
		if !KnownScheme(schemeName) {
			return nil, fmt.Errorf("serve: unknown scheme %q (have %v)", schemeName, SchemeNames())
		}
	case TierTables:
		if !TableCapable(schemeName) {
			return nil, fmt.Errorf("serve: scheme %q cannot serve the tables tier", schemeName)
		}
	default:
		return nil, fmt.Errorf("serve: unknown tier %q", tier)
	}
	if owned != nil {
		if owned.N() != g.N() {
			return nil, fmt.Errorf("serve: owned set over n=%d, graph has n=%d", owned.N(), g.N())
		}
		owned = owned.Clone()
	}
	e := &Engine{
		g:      g.Clone(),
		scheme: schemeName,
		tier:   tier,
		codec:  CodecArena,
		cache:  shortestpath.NewCache(2),
		owned:  owned,
	}
	if _, err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// MutateOwned is Mutate with an ownership change in the same publication:
// the snapshot built from the (optionally) mutated topology is restricted to
// owned (nil = lift the restriction). Replicas replay shard rebalances
// through here, so the ownership handover and the topology it applies to
// publish atomically — there is no window serving the old keyspace on the
// new tables.
func (e *Engine) MutateOwned(owned *keyspace.Set, fn func(g *graph.Graph) error) (*Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if owned != nil {
		if owned.N() != e.g.N() {
			return nil, fmt.Errorf("serve: owned set over n=%d, graph has n=%d", owned.N(), e.g.N())
		}
		owned = owned.Clone()
	}
	next := e.g.Clone()
	if fn != nil {
		if err := fn(next); err != nil {
			return nil, err
		}
	}
	oldG, oldOwned := e.g, e.owned
	e.g, e.owned = next, owned
	snap, err := e.rebuildLocked()
	if err != nil {
		e.g, e.owned = oldG, oldOwned
		return nil, err
	}
	return snap, nil
}

// SetOwned republishes the current topology restricted to owned — the
// shard-split handover step on the donor group.
func (e *Engine) SetOwned(owned *keyspace.Set) (*Snapshot, error) {
	return e.MutateOwned(owned, nil)
}
