package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"routetab/internal/graph"
)

func newTestServer(t *testing.T, n int, seed int64, scheme string, opts ServerOptions) *Server {
	t.Helper()
	eng, err := NewEngine(testGraph(t, n, seed), scheme)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng, opts)
	t.Cleanup(s.Close)
	return s
}

func TestServerSingleLookup(t *testing.T) {
	s := newTestServer(t, 48, 11, "fulltable", ServerOptions{})
	res := s.NextHop(1, 40)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.NextDist != res.Dist-1 {
		t.Fatalf("next hop does not progress: %+v", res)
	}
	if res.Seq != 1 {
		t.Fatalf("seq = %d", res.Seq)
	}
	if got := s.Metrics().Counter("serve_lookups_total").Value(); got != 1 {
		t.Fatalf("lookups counter = %d", got)
	}
}

func TestServerBatchAcrossShards(t *testing.T) {
	s := newTestServer(t, 64, 13, "fulltable", ServerOptions{Shards: 4})
	var pairs [][2]int
	for src := 1; src <= 31; src++ {
		pairs = append(pairs, [2]int{src, 64 - src})
	}
	out := make([]Result, len(pairs))
	if err := s.LookupBatch(pairs, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("pair %v: %v", pairs[i], r.Err)
		}
		if r.NextDist != r.Dist-1 {
			t.Fatalf("pair %v answered %+v", pairs[i], r)
		}
	}
	if err := s.LookupBatch(pairs, out[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestServerSelfAndErrorCounting(t *testing.T) {
	s := newTestServer(t, 32, 17, "fulltable", ServerOptions{})
	res := s.NextHop(5, 5)
	if !errors.Is(res.Err, ErrSelfLookup) {
		t.Fatalf("self lookup: %v", res.Err)
	}
	if got := s.Metrics().Counter("serve_errors_total").Value(); got != 1 {
		t.Fatalf("errors counter = %d", got)
	}
}

// TestServerBackpressure: a server whose single shard is saturated sheds
// with ErrOverloaded instead of queueing unboundedly, and counts the sheds.
func TestServerBackpressure(t *testing.T) {
	s := newTestServer(t, 32, 19, "fulltable", ServerOptions{Shards: 1, QueueCap: 1, MaxBatch: 1})
	// Race many concurrent single lookups through a capacity-1 queue; some
	// must be shed, and every shed must be explicit.
	var wg sync.WaitGroup
	var served, shed atomic.Uint64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := s.NextHop(3, 7)
			switch {
			case res.Err == nil:
				served.Add(1)
			case errors.Is(res.Err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("unexpected error: %v", res.Err)
			}
		}()
	}
	wg.Wait()
	if served.Load()+shed.Load() != 64 {
		t.Fatalf("served %d + shed %d != 64", served.Load(), shed.Load())
	}
	if served.Load() == 0 {
		t.Fatal("nothing served")
	}
	if got := s.Metrics().Counter("serve_rejects_total").Value(); got != shed.Load() {
		t.Fatalf("rejects counter %d != observed sheds %d", got, shed.Load())
	}
}

// TestServerHotSwapUnderLoad is the serving-layer acceptance test: ≥ 10
// concurrent snapshot hot-swaps while lookups hammer the server, with
//
//   - no dropped lookup: every submitted pair gets a definite Result,
//   - no incorrect answer: every error-free Result satisfies the
//     shortest-path invariant NextDist == Dist−1 within its own snapshot,
//   - no stale-version response: a lookup submitted after swap k completes
//     is served by a snapshot with Seq ≥ k's.
func TestServerHotSwapUnderLoad(t *testing.T) {
	const swaps = 12
	s := newTestServer(t, 64, 23, "fulltable", ServerOptions{Shards: 4, QueueCap: 4096, MaxBatch: 32})
	eng := s.Engine()

	stop := make(chan struct{})
	var answered, wrong atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			pairs := make([][2]int, 8)
			out := make([]Result, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for k := range pairs {
					src := (w*16+i+k)%64 + 1
					dst := (src + k + 7) % 64
					if dst == 0 {
						dst = 64
					}
					if dst == src {
						dst = src%64 + 1
					}
					pairs[k] = [2]int{src, dst}
				}
				if err := s.LookupBatch(pairs, out); err != nil {
					t.Error(err)
					return
				}
				for _, r := range out {
					answered.Add(1)
					if r.Err != nil {
						t.Errorf("lookup failed mid-swap: %v", r.Err)
						return
					}
					if r.NextDist != r.Dist-1 {
						wrong.Add(1)
					}
				}
			}
		}()
	}

	for i := 0; i < swaps; i++ {
		snap, err := eng.Mutate(func(g *graph.Graph) error {
			if g.HasEdge(1, 2) {
				return g.RemoveEdge(1, 2)
			}
			return g.AddEdge(1, 2)
		})
		if err != nil {
			t.Fatal(err)
		}
		// Freshness: a lookup issued after the swap publishes must be
		// served by that snapshot or a newer one.
		res := s.NextHop(3, 40)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Seq < snap.Seq {
			t.Fatalf("stale response: served by seq %d after swap published seq %d", res.Seq, snap.Seq)
		}
	}
	// The swap loop can outrun worker scheduling under heavy machine load;
	// keep the storm open until at least one batch has been answered so the
	// mid-swap assertions below are exercised on every run.
	for answered.Load() == 0 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()

	if eng.Swaps() < swaps+1 {
		t.Fatalf("swaps = %d", eng.Swaps())
	}
	if answered.Load() == 0 {
		t.Fatal("no lookups answered during the swap storm")
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d of %d answers violated the shortest-path invariant", wrong.Load(), answered.Load())
	}
	// No drops: the lookups counter must account for every answered pair
	// (rejections would have surfaced as ErrOverloaded above).
	if got := s.Metrics().Counter("serve_rejects_total").Value(); got != 0 {
		t.Fatalf("rejects = %d with a 4096-deep queue", got)
	}
}

// TestServerDrainOnClose: lookups accepted before Close are answered, and
// lookups after Close are rejected with ErrClosed semantics (ErrOverloaded
// from the closed pool).
func TestServerDrainOnClose(t *testing.T) {
	eng, err := NewEngine(testGraph(t, 32, 29), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng, ServerOptions{Shards: 2})
	res := s.NextHop(1, 9)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	s.Close()
	res = s.NextHop(1, 9)
	if !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("lookup after close: %v", res.Err)
	}
}

// TestServerStretchSampling: with aggressive sampling the stretch histogram
// fills, and on a shortest-path scheme every sample is exactly 1000 (×1000).
func TestServerStretchSampling(t *testing.T) {
	s := newTestServer(t, 48, 31, "fulltable", ServerOptions{StretchSampleEvery: 1})
	for src := 1; src <= 16; src++ {
		if res := s.NextHop(src, 48-src); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	h := s.Metrics().Histogram("serve_stretch_x1000", nil)
	if h.Count() == 0 {
		t.Fatal("no stretch samples recorded")
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Fatalf("shortest-path scheme sampled stretch %d (×1000)", q)
	}
}
