// Package serve is the online query layer over the repo's routing schemes:
// where core.Build constructs a table offline and Verify measures it once,
// serve keeps a built table resident in memory and answers "next port toward
// v" queries under concurrent load — the workload the paper's Θ(n²)-bit
// object (Theorem 1) and its stretch/space relatives (Theorems 3–5) exist
// for.
//
// The package splits into three pieces:
//
//   - Snapshot: one immutable, versioned view of (graph, ports, scheme,
//     distances). All query state hangs off a single pointer, so a reader
//     that has acquired a snapshot can never observe a half-updated table.
//   - Engine: owns the current snapshot behind an atomic pointer. Topology
//     changes clone the graph, rebuild scheme + distances off the hot path
//     (through a shortestpath.Cache), and publish the finished snapshot with
//     one atomic store — readers are never blocked by a rebuild.
//   - Server (server.go): the sharded, batching lookup front end.
//
// Rebuilds follow the determinism contract of DESIGN.md §8: a snapshot's
// tables are a pure function of (topology, scheme name), so two engines fed
// the same mutation sequence publish byte-identical tables.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// Errors.
var (
	// ErrOverloaded indicates a lookup was shed because its shard queue was
	// full (explicit backpressure, never silent drops). Sheds carry a
	// *OverloadedError with a retry-after hint; errors.Is against this
	// sentinel matches both forms.
	ErrOverloaded = errors.New("serve: server overloaded, lookup rejected")
	// ErrClosed indicates a lookup arrived after Close started draining.
	ErrClosed = errors.New("serve: server closed")
	// ErrSelfLookup indicates src == dst (there is no next hop to yourself).
	ErrSelfLookup = errors.New("serve: source equals destination")
	// ErrUnavailable indicates a lookup that could not be answered even in
	// degraded mode: the destination (or every candidate detour) is behind
	// failed links or crashed nodes the repairer has not yet routed around.
	// Temporary by construction — repair or rebuild clears it.
	ErrUnavailable = errors.New("serve: temporarily unavailable, no live route")
	// ErrPanicked indicates the lookup's worker panicked mid-answer. The
	// batch fails, the shard worker survives, and the caller gets a definite
	// per-pair answer instead of a hung WaitGroup.
	ErrPanicked = errors.New("serve: lookup worker panicked")
)

// OverloadedError is the structured form of a shed: which shard rejected the
// lookup and a heuristic hint for how long the caller should back off before
// retrying (a full-queue drain estimate from the shard's recent service
// rate). It matches errors.Is(err, ErrOverloaded), so existing callers keep
// working; callers that care unwrap with errors.As.
type OverloadedError struct {
	Shard      int
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serve: shard %d overloaded, retry after %v", e.Shard, e.RetryAfter)
}

// Is reports equivalence to the ErrOverloaded sentinel.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Snapshot tiers: what a snapshot carries as its distance side-channel.
const (
	// TierFull snapshots carry the O(n²) packed all-pairs matrix — exact
	// distances, exhaustive grading, the classic regime (n ≤ ~4096).
	TierFull = "full"
	// TierTables snapshots carry the compact scheme's own tables instead of
	// the matrix: o(n²) space, distances served as stretch-bounded estimates,
	// answers verified by spot-sampling. The large-graph regime.
	TierTables = "tables"
)

// Router is the uniform query interface every built scheme serves behind:
// queries address nodes by their original index, and label translation (e.g.
// interval routing's DFS renumbering) happens inside.
type Router interface {
	// SchemeName identifies the construction answering queries.
	SchemeName() string
	// N returns the number of nodes covered.
	N() int
	// NextHop returns the neighbour src forwards to on its route to dst.
	NextHop(src, dst int) (int, error)
	// Route runs the full local-function route and returns its trace.
	Route(src, dst int) (*routing.Trace, error)
}

// Snapshot is one immutable serving view: the graph at a fixed version, its
// port assignment, the built scheme, the all-pairs matrix, and the reference
// simulator that executes the scheme's local functions. Snapshots are
// published whole via an atomic pointer and never mutated afterwards.
type Snapshot struct {
	// Seq is the engine-local publication sequence, starting at 1. A reader
	// holding two results can totally order the snapshots that served them.
	Seq uint64
	// Scheme is the construction name (see SchemeNames).
	Scheme string
	// Graph is the topology this snapshot serves. Treat as read-only.
	Graph *graph.Graph
	// Ports is the port assignment the tables were built against.
	Ports *graph.Ports
	// Dist is the all-pairs ground truth for this topology. Nil on TierTables
	// snapshots — use DistEstimate, which degrades to the scheme's own
	// stretch-bounded upper bounds.
	Dist *shortestpath.Distances
	// Tier is TierFull or TierTables (Dist == nil ⇔ TierTables).
	Tier string

	scheme   routing.Scheme
	sim      *routing.Sim
	hopLimit int
	// est and tables are set on TierTables snapshots: the scheme's distance
	// estimator and its deterministic table encoding (what the arena persists
	// in place of the matrix).
	est    DistEstimator
	tables []byte
	// owned restricts the sources this snapshot serves (shard.go); nil means
	// every source. The hot path answers foreign sources with ErrWrongShard.
	owned *keyspace.Set
}

var _ Router = (*Snapshot)(nil)

// SchemeName returns the construction name.
func (s *Snapshot) SchemeName() string { return s.Scheme }

// SchemeImpl returns the routing-scheme object backing this snapshot, for
// callers that need scheme-specific introspection (landmark count, space
// accounting) beyond the routing.Scheme surface.
func (s *Snapshot) SchemeImpl() routing.Scheme { return s.scheme }

// N returns the node count.
func (s *Snapshot) N() int { return s.Graph.N() }

// NextHop asks src's local routing function for its forwarding decision
// toward dst and returns the neighbour behind the chosen port.
func (s *Snapshot) NextHop(src, dst int) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("%w: %d", ErrSelfLookup, src)
	}
	return s.sim.FirstHop(src, dst)
}

// Route runs the full route src→dst under the snapshot's hop limit.
func (s *Snapshot) Route(src, dst int) (*routing.Trace, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: %d", ErrSelfLookup, src)
	}
	return s.sim.RouteByNode(src, dst, s.hopLimit)
}

// SpaceBits returns the scheme's total storage under its own model-free
// accounting (Σ|F(u)|): the table-residency figure the daemon reports.
func (s *Snapshot) SpaceBits() int {
	total := 0
	for u := 1; u <= s.scheme.N(); u++ {
		total += s.scheme.FunctionBits(u)
	}
	return total
}

// TablesBytes returns the snapshot's persisted table encoding (TierTables
// only; nil on TierFull). Read-only.
func (s *Snapshot) TablesBytes() []byte { return s.tables }

// ArenaSize returns the exact byte size this snapshot occupies in its arena
// encoding — the snapshot_bytes gauge, computed from the layout arithmetic
// without encoding anything.
func (s *Snapshot) ArenaSize() int {
	distLen := s.Graph.N() * s.Graph.N()
	if s.Dist == nil {
		distLen = len(s.tables)
	}
	return arenaLayoutLen(s.Graph.N(), s.Graph.Words(), s.Graph.M(), distLen, len(s.Scheme))
}

// PublishHook observes every snapshot publication: prev is the snapshot that
// was current before the swap (nil for the engine's very first build) and cur
// the one just published. The hook runs under the engine's mutation lock, so
// invocations are totally ordered by publication and must not call back into
// Mutate/Reload; keep it fast (the replication layer appends one WAL record).
type PublishHook func(prev, cur *Snapshot)

// Engine owns the mutable topology and the atomically-published current
// snapshot. All mutations serialise on an internal mutex (rebuilds are the
// slow path); readers only ever touch the atomic pointer.
type Engine struct {
	mu     sync.Mutex // serialises Mutate/Reload and guards persistPath, hook
	g      *graph.Graph
	scheme string
	// tier selects what snapshots carry: TierFull (all-pairs matrix) or
	// TierTables (the compact scheme's own tables). Set at construction,
	// immutable afterwards.
	tier  string
	cache *shortestpath.Cache
	cur   atomic.Pointer[Snapshot]
	swaps atomic.Uint64
	hook  PublishHook
	// owned is the keyspace shard this engine serves (shard.go); nil means
	// unrestricted. Guarded by mu; every rebuild snapshots it.
	owned *keyspace.Set
	// codec names the snapshot codec behind the engine's initial state:
	// CodecArena for cold builds and arena warm boots, CodecLegacy when the
	// engine was restored from a pre-arena RTSNAP1 file. Set at construction,
	// immutable afterwards (saves always write arena either way).
	codec string

	// Crash-safe persistence (EnablePersist): every published snapshot is
	// saved to persistPath via an atomic temp-file rename. A failed save
	// never blocks publication — serving availability beats durability —
	// but is recorded for the daemon to surface.
	persistPath     string
	persists        atomic.Uint64
	persistFailures atomic.Uint64
	persistErr      atomic.Pointer[error]
}

// NewEngine builds the first snapshot of g under the named scheme and returns
// the engine serving it. The engine clones g, so later caller-side mutations
// of g do not corrupt published snapshots; change topology through Mutate.
func NewEngine(g *graph.Graph, schemeName string) (*Engine, error) {
	if !KnownScheme(schemeName) {
		return nil, fmt.Errorf("serve: unknown scheme %q (have %v)", schemeName, SchemeNames())
	}
	e := &Engine{
		g:      g.Clone(),
		scheme: schemeName,
		tier:   TierFull,
		codec:  CodecArena,
		// Capacity 2: the outgoing snapshot's matrix plus the one being
		// built; older matrices are garbage the LRU can drop.
		cache: shortestpath.NewCache(2),
	}
	if _, err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// NewTieredEngine builds a TierTables engine: snapshots carry the named
// compact scheme's tables instead of the all-pairs matrix, and rebuilds never
// touch the O(n²) distance computation — the large-graph serving mode
// (n = 4096–16384, where the matrix alone would cost up to 256 MB and its
// recompute would dominate every mutation).
func NewTieredEngine(g *graph.Graph, schemeName string) (*Engine, error) {
	if !TableCapable(schemeName) {
		return nil, fmt.Errorf("serve: scheme %q cannot serve the tables tier", schemeName)
	}
	e := &Engine{
		g:      g.Clone(),
		scheme: schemeName,
		tier:   TierTables,
		codec:  CodecArena,
		cache:  shortestpath.NewCache(2),
	}
	if _, err := e.rebuildLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// Current returns the serving snapshot. The returned snapshot stays valid
// (and internally consistent) forever; it just stops being current after the
// next swap.
func (e *Engine) Current() *Snapshot { return e.cur.Load() }

// Swaps returns how many snapshots have been published (initial build
// included).
func (e *Engine) Swaps() uint64 { return e.swaps.Load() }

// Scheme returns the construction name the engine builds.
func (e *Engine) Scheme() string { return e.scheme }

// Tier reports the engine's snapshot tier (TierFull or TierTables).
func (e *Engine) Tier() string { return e.tier }

// Codec reports the snapshot codec behind the engine's initial state —
// CodecArena unless the engine warm-booted from a legacy RTSNAP1 file.
func (e *Engine) Codec() string { return e.codec }

// Mutate applies fn to a private clone of the current topology, rebuilds
// scheme and distances off the hot path, and atomically publishes the result.
// Queries proceed uninterrupted on the old snapshot throughout; on any error
// (fn itself, or a scheme that cannot be built on the mutated topology —
// e.g. a disconnecting edge removal) nothing is published and the old
// snapshot stays current.
func (e *Engine) Mutate(fn func(g *graph.Graph) error) (*Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := e.g.Clone()
	if fn != nil {
		if err := fn(next); err != nil {
			return nil, err
		}
	}
	old := e.g
	e.g = next
	snap, err := e.rebuildLocked()
	if err != nil {
		e.g = old
		return nil, err
	}
	return snap, nil
}

// Reload rebuilds and republishes the current topology unchanged — a pure
// hot swap (new tables, same answers), useful for exercising swap paths and
// for picking up builder changes in tests.
func (e *Engine) Reload() (*Snapshot, error) { return e.Mutate(nil) }

// SetPublishHook installs (or, with nil, removes) the publication observer.
// Install it before concurrent mutations start; snapshots already published
// are not replayed — the caller reads Current() for the base state.
func (e *Engine) SetPublishHook(h PublishHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = h
}

// EnablePersist saves the current snapshot to path now and every later
// published snapshot as it is swapped in. The first save's error is returned
// (a broken path should fail loudly at setup); later save failures are
// recorded (PersistStats) without blocking publication.
func (e *Engine) EnablePersist(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.persistPath = path
	return e.saveLocked(e.cur.Load())
}

// DisablePersist stops saving published snapshots. It waits for any in-flight
// mutation (and its save) to finish, so after it returns the engine writes to
// the file no more — the handover point when another engine takes over the
// path after a restore.
func (e *Engine) DisablePersist() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.persistPath = ""
}

// FlushPersist saves the current snapshot now, regardless of when the last
// publication happened — the shutdown path's final flush, so a daemon that
// exits on SIGTERM leaves the freshest snapshot on disk even when the last
// publish-time save failed transiently. A no-op without persistence enabled.
func (e *Engine) FlushPersist() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saveLocked(e.cur.Load())
}

// PersistStats reports persistence health: successful saves, failed saves,
// and the most recent failure (nil when none).
func (e *Engine) PersistStats() (saves, failures uint64, last error) {
	if p := e.persistErr.Load(); p != nil {
		last = *p
	}
	return e.persists.Load(), e.persistFailures.Load(), last
}

// saveLocked persists snap if persistence is enabled. Caller holds e.mu.
func (e *Engine) saveLocked(snap *Snapshot) error {
	if e.persistPath == "" || snap == nil {
		return nil
	}
	if err := SaveSnapshot(e.persistPath, snap); err != nil {
		e.persistFailures.Add(1)
		e.persistErr.Store(&err)
		return err
	}
	e.persists.Add(1)
	return nil
}

// rebuildLocked builds a snapshot from e.g and publishes it. Caller holds
// e.mu.
func (e *Engine) rebuildLocked() (*Snapshot, error) {
	g := e.g
	ports := graph.SortedPorts(g)
	var (
		dm     *shortestpath.Distances
		scheme routing.Scheme
		est    DistEstimator
		tables []byte
	)
	if e.tier == TierTables {
		// The tables tier never computes all-pairs distances: the scheme
		// builds from topology alone and its tables are encoded eagerly so
		// persistence, state shipping, and the snapshot_bytes gauge all read
		// the same deterministic blob.
		ts, err := BuildTableScheme(e.scheme, g, ports)
		if err != nil {
			return nil, err
		}
		if e.owned != nil {
			// Restriction happens before encoding: the snapshot's table blob —
			// what persistence, state shipping, and resync all carry — holds
			// only the owned rows, so per-shard resync bytes shrink with the
			// shard instead of shipping the whole scheme.
			r, ok := ts.(Restricter)
			if !ok {
				return nil, fmt.Errorf("serve: scheme %q cannot restrict to a keyspace shard", e.scheme)
			}
			if err := r.Restrict(e.owned); err != nil {
				return nil, err
			}
		}
		scheme, est, tables = ts, ts, ts.EncodeTables()
	} else {
		var err error
		dm, err = e.cache.AllPairs(g)
		if err != nil {
			return nil, err
		}
		scheme, err = BuildScheme(e.scheme, g, ports, dm)
		if err != nil {
			return nil, err
		}
	}
	sim, err := routing.NewSim(g, ports, scheme)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Seq:      e.swaps.Load() + 1,
		Scheme:   e.scheme,
		Graph:    g,
		Ports:    ports,
		Dist:     dm,
		Tier:     e.tier,
		scheme:   scheme,
		sim:      sim,
		hopLimit: routing.DefaultHopLimit(g.N()),
		est:      est,
		tables:   tables,
		owned:    e.owned,
	}
	prev := e.cur.Load()
	e.cur.Store(snap)
	e.swaps.Add(1)
	// The hook (WAL journaling) runs before the snapshot save so the durable
	// WAL frontier never trails the persisted snapshot Seq — crash recovery
	// relies on replaying the WAL forward from the snapshot, never backward.
	if e.hook != nil {
		e.hook(prev, snap)
	}
	// Durability follows publication: a save failure is recorded, not fatal
	// (the previous good file stays in place thanks to the atomic rename).
	_ = e.saveLocked(snap)
	return snap, nil
}
