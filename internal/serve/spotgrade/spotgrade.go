// Package spotgrade is the scalable answer verifier for the tables tier:
// exhaustive grading against an all-pairs matrix is exactly what large-graph
// serving abolished, so correctness is instead asserted on a seeded hash
// sample of served lookups, with BFS ground truth computed on demand per
// sampled destination and cached.
//
// For every sampled answer the grader asserts the full contract a stretch-3
// scheme owes its callers:
//
//   - the pair is reachable (a served answer for an unreachable pair is a
//     lie, not a degraded mode);
//   - the returned next hop is an actual neighbour of the source;
//   - the snapshot's own full route delivers within 3·d(src, dst) hops — the
//     Thorup–Zwick bound the landmark construction guarantees. On a
//     keyspace-restricted shard snapshot foreign intermediate hops are
//     unroutable locally by design, so the answer's distance estimate is held
//     to the same two-sided d ≤ est ≤ 3d bound instead.
//
// Sampling is deterministic: whether a (src, dst) pair is graded depends only
// on (src, dst, Seed, SampleEvery), never on timing, so two runs of the same
// seeded workload grade the same pairs. Answers from a snapshot other than
// the current one (a swap raced the lookup) are skipped, not failed — the
// grader verifies snapshots against themselves, not against later topology.
package spotgrade

import (
	"fmt"
	"sync"
	"sync/atomic"

	"routetab/internal/serve"
	"routetab/internal/shortestpath"
)

// Config parameterises a Grader.
type Config struct {
	// Seed perturbs the pair-sampling hash.
	Seed int64
	// SampleEvery grades ~1/SampleEvery of observed answers (deterministic
	// per pair). ≤ 1 grades everything; 0 defaults to 16.
	SampleEvery int
	// MaxBFSCache bounds the per-destination BFS results kept per snapshot
	// sequence (FIFO eviction). 0 defaults to 64.
	MaxBFSCache int
}

// Grader spot-checks served answers against on-demand BFS ground truth.
type Grader struct {
	eng *serve.Engine
	cfg Config

	graded       atomic.Uint64
	skippedHash  atomic.Uint64
	skippedStale atomic.Uint64
	skippedErr   atomic.Uint64
	violations   atomic.Uint64
	maxMilli     atomic.Int64
	sumMilli     atomic.Int64

	mu       sync.Mutex
	cacheSeq uint64
	cache    map[int]*shortestpath.BFSResult
	order    []int
	firstBad atomic.Pointer[string]
}

// New builds a grader over eng's snapshots.
func New(eng *serve.Engine, cfg Config) *Grader {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	if cfg.MaxBFSCache <= 0 {
		cfg.MaxBFSCache = 64
	}
	return &Grader{eng: eng, cfg: cfg, cache: make(map[int]*shortestpath.BFSResult)}
}

// sampled reports whether the (src, dst) pair is in the seeded sample — a
// pure function of the pair and the config.
func (g *Grader) sampled(src, dst int) bool {
	if g.cfg.SampleEvery <= 1 {
		return true
	}
	h := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xBF58476D1CE4E5B9 ^ uint64(g.cfg.Seed)
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return h%uint64(g.cfg.SampleEvery) == 0
}

// Observe feeds one served answer to the grader. Errors are not graded (the
// load generator already accounts for them); answers from a non-current
// snapshot are skipped as stale.
func (g *Grader) Observe(src, dst int, r *serve.Result) {
	if r.Err != nil {
		g.skippedErr.Add(1)
		return
	}
	if !g.sampled(src, dst) {
		g.skippedHash.Add(1)
		return
	}
	snap := g.eng.Current()
	if snap.Seq != r.Seq {
		g.skippedStale.Add(1)
		return
	}
	g.grade(snap, src, dst, r)
}

// grade verifies one answer against snap. BFS runs from the destination (the
// graph is undirected, so Dist[src] = d(src, dst)) and is cached per (Seq,
// dst) so hot destinations cost one traversal.
func (g *Grader) grade(snap *serve.Snapshot, src, dst int, r *serve.Result) {
	bfs, err := g.bfsFrom(snap, dst)
	if err != nil {
		g.fail(fmt.Sprintf("BFS from %d: %v", dst, err))
		return
	}
	d := bfs.Dist[src]
	if d == shortestpath.Unreachable {
		g.fail(fmt.Sprintf("served %d→%d but the pair is unreachable", src, dst))
		return
	}
	if !snap.Graph.HasEdge(src, r.Next) {
		g.fail(fmt.Sprintf("next hop %d→%d = %d is not a neighbour", src, dst, r.Next))
		return
	}
	if snap.Owned() != nil {
		// Restricted shard snapshot: the full-route walk cannot run inside one
		// member — foreign intermediate hops are other shards' tables by
		// design — so assert the answer's distance estimate against the same
		// two-sided stretch-3 contract (d ≤ est ≤ 3d) instead. End-to-end
		// cross-shard route walks are the shard chaos harness's quiesce job.
		if r.Dist < d || r.Dist > 3*d {
			g.fail(fmt.Sprintf("estimate %d→%d = %d outside [%d, %d]",
				src, dst, r.Dist, d, 3*d))
			return
		}
		g.pass(int64(r.Dist) * 1000 / int64(d))
		return
	}
	tr, err := snap.Route(src, dst)
	if err != nil {
		g.fail(fmt.Sprintf("route %d→%d: %v", src, dst, err))
		return
	}
	if tr.Hops > 3*d {
		g.fail(fmt.Sprintf("route %d→%d took %d hops for distance %d (stretch %.2f)",
			src, dst, tr.Hops, d, float64(tr.Hops)/float64(d)))
		return
	}
	g.pass(int64(tr.Hops) * 1000 / int64(d))
}

// pass records one graded answer's stretch ×1000.
func (g *Grader) pass(milli int64) {
	for {
		old := g.maxMilli.Load()
		if milli <= old || g.maxMilli.CompareAndSwap(old, milli) {
			break
		}
	}
	g.sumMilli.Add(milli)
	g.graded.Add(1)
}

// bfsFrom returns BFS ground truth rooted at dst under snap's topology,
// cached per snapshot sequence with FIFO eviction.
func (g *Grader) bfsFrom(snap *serve.Snapshot, dst int) (*shortestpath.BFSResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cacheSeq != snap.Seq {
		g.cacheSeq = snap.Seq
		g.cache = make(map[int]*shortestpath.BFSResult)
		g.order = g.order[:0]
	}
	if res, ok := g.cache[dst]; ok {
		return res, nil
	}
	res, err := shortestpath.BFS(snap.Graph, dst)
	if err != nil {
		return nil, err
	}
	if len(g.order) >= g.cfg.MaxBFSCache {
		delete(g.cache, g.order[0])
		g.order = g.order[1:]
	}
	g.cache[dst] = res
	g.order = append(g.order, dst)
	return res, nil
}

func (g *Grader) fail(msg string) {
	g.violations.Add(1)
	g.firstBad.CompareAndSwap(nil, &msg)
}

// Graded returns how many answers were fully verified.
func (g *Grader) Graded() uint64 { return g.graded.Load() }

// Skipped returns how many observed answers were not graded, split by cause:
// outside the hash sample, stale snapshot, or errored answer.
func (g *Grader) Skipped() (hash, stale, errored uint64) {
	return g.skippedHash.Load(), g.skippedStale.Load(), g.skippedErr.Load()
}

// Violations returns how many graded answers broke the contract.
func (g *Grader) Violations() uint64 { return g.violations.Load() }

// MaxStretchMilli returns the worst observed stretch ×1000 (1000 = exact
// shortest path).
func (g *Grader) MaxStretchMilli() int64 { return g.maxMilli.Load() }

// MeanStretchMilli returns the mean observed stretch ×1000 over graded
// answers (0 when nothing was graded).
func (g *Grader) MeanStretchMilli() int64 {
	n := g.graded.Load()
	if n == 0 {
		return 0
	}
	return g.sumMilli.Load() / int64(n)
}

// Err returns nil when every graded answer honoured the contract, else an
// error carrying the count and the first violation.
func (g *Grader) Err() error {
	v := g.violations.Load()
	if v == 0 {
		return nil
	}
	first := ""
	if p := g.firstBad.Load(); p != nil {
		first = *p
	}
	return fmt.Errorf("spotgrade: %d violation(s), first: %s", v, first)
}
