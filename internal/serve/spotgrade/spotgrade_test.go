package spotgrade

import (
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

func tieredEngine(t *testing.T, n int, seed int64) *serve.Engine {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 5, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGraderAcceptsTieredAnswers: every answer a tables-tier snapshot serves
// must pass the full contract — graded at SampleEvery=1 so nothing hides in
// the unsampled remainder.
func TestGraderAcceptsTieredAnswers(t *testing.T) {
	eng := tieredEngine(t, 80, 11)
	snap := eng.Current()
	gr := New(eng, Config{SampleEvery: 1})
	for src := 1; src <= 80; src++ {
		for dst := 1; dst <= 80; dst += 7 {
			if src == dst {
				continue
			}
			next, err := snap.NextHop(src, dst)
			if err != nil {
				t.Fatalf("NextHop(%d,%d): %v", src, dst, err)
			}
			r := serve.Result{Next: next, Dist: snap.DistEstimate(src, dst),
				NextDist: snap.DistEstimate(next, dst), Seq: snap.Seq}
			gr.Observe(src, dst, &r)
		}
	}
	if gr.Graded() == 0 {
		t.Fatal("nothing graded at SampleEvery=1")
	}
	if err := gr.Err(); err != nil {
		t.Fatal(err)
	}
	if gr.MaxStretchMilli() > 3000 {
		t.Fatalf("max stretch %d exceeds the 3000-milli bound", gr.MaxStretchMilli())
	}
	if mean := gr.MeanStretchMilli(); mean < 1000 || mean > 3000 {
		t.Fatalf("mean stretch %d outside [1000, 3000]", mean)
	}
}

// TestGraderSamplingIsDeterministic: whether a pair is graded is a pure
// function of (pair, Seed, SampleEvery) — two graders with the same config
// must agree pair by pair, and the sample must be a strict subset.
func TestGraderSamplingIsDeterministic(t *testing.T) {
	eng := tieredEngine(t, 60, 3)
	snap := eng.Current()
	a := New(eng, Config{Seed: 42, SampleEvery: 8})
	b := New(eng, Config{Seed: 42, SampleEvery: 8})
	for src := 1; src <= 60; src++ {
		for dst := 1; dst <= 60; dst++ {
			if src == dst {
				continue
			}
			next, err := snap.NextHop(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			r := serve.Result{Next: next, Seq: snap.Seq}
			a.Observe(src, dst, &r)
			b.Observe(src, dst, &r)
			if a.Graded() != b.Graded() {
				t.Fatalf("graders diverged at (%d,%d): %d vs %d", src, dst, a.Graded(), b.Graded())
			}
		}
	}
	hash, _, _ := a.Skipped()
	if a.Graded() == 0 || hash == 0 {
		t.Fatalf("sample not strict: graded=%d hash-skipped=%d", a.Graded(), hash)
	}
}

// TestGraderSkipsStaleAndErrored: answers from a superseded snapshot and
// errored answers are skipped, never failed.
func TestGraderSkipsStaleAndErrored(t *testing.T) {
	eng := tieredEngine(t, 40, 5)
	snap := eng.Current()
	gr := New(eng, Config{SampleEvery: 1})

	stale := serve.Result{Next: 2, Seq: snap.Seq + 1}
	gr.Observe(1, 3, &stale)
	errored := serve.Result{Err: serve.ErrSelfLookup, Seq: snap.Seq}
	gr.Observe(4, 4, &errored)

	_, staleN, errN := gr.Skipped()
	if staleN != 1 || errN != 1 {
		t.Fatalf("skips: stale=%d errored=%d, want 1/1", staleN, errN)
	}
	if gr.Graded() != 0 || gr.Violations() != 0 || gr.Err() != nil {
		t.Fatalf("skipped answers were graded: graded=%d violations=%d", gr.Graded(), gr.Violations())
	}
}

// TestGraderCatchesBadNextHop: a fabricated answer whose next hop is not a
// neighbour of the source must be flagged.
func TestGraderCatchesBadNextHop(t *testing.T) {
	eng := tieredEngine(t, 40, 7)
	snap := eng.Current()
	gr := New(eng, Config{SampleEvery: 1})
	bogus := serve.Result{Next: 1, Seq: snap.Seq} // self-loop: never a neighbour
	gr.Observe(1, 9, &bogus)
	if gr.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", gr.Violations())
	}
	if err := gr.Err(); err == nil {
		t.Fatal("Err() nil after a violation")
	}
}
