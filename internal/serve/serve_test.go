package serve

import (
	"errors"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/shortestpath"
)

func testGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSchemeRegistry(t *testing.T) {
	names := SchemeNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 schemes, got %v", names)
	}
	for _, name := range names {
		if !KnownScheme(name) {
			t.Fatalf("%s not known", name)
		}
	}
	if KnownScheme("nope") {
		t.Fatal("unknown scheme reported known")
	}
	for _, name := range []string{"fulltable", "compact", "fullinfo"} {
		if !IsShortestPath(name) {
			t.Fatalf("%s should be shortest-path", name)
		}
	}
	if IsShortestPath("hub") {
		t.Fatal("hub is stretch-2, not shortest-path")
	}
}

// TestEngineServesEveryScheme: the engine builds a queryable snapshot for
// every registered scheme, and NextHop answers something sane on each.
func TestEngineServesEveryScheme(t *testing.T) {
	g := testGraph(t, 48, 7)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(g, name)
			if err != nil {
				t.Fatal(err)
			}
			snap := eng.Current()
			if snap.Seq != 1 || snap.SchemeName() != name || snap.N() != 48 {
				t.Fatalf("snapshot header: %+v", snap)
			}
			if snap.SpaceBits() <= 0 {
				t.Fatal("scheme reports no storage")
			}
			for src := 1; src <= 8; src++ {
				for dst := 40; dst <= 48; dst++ {
					next, err := snap.NextHop(src, dst)
					if err != nil {
						t.Fatalf("NextHop(%d,%d): %v", src, dst, err)
					}
					if !g.HasEdge(src, next) {
						t.Fatalf("NextHop(%d,%d) = %d: not a neighbour", src, dst, next)
					}
					if IsShortestPath(name) && dm.Dist(next, dst) != dm.Dist(src, dst)-1 {
						t.Fatalf("%s NextHop(%d,%d) = %d does not decrease distance", name, src, dst, next)
					}
					tr, err := snap.Route(src, dst)
					if err != nil {
						t.Fatalf("Route(%d,%d): %v", src, dst, err)
					}
					if tr.Path[len(tr.Path)-1] != dst {
						t.Fatalf("Route(%d,%d) ended at %d", src, dst, tr.Path[len(tr.Path)-1])
					}
				}
			}
		})
	}
}

func TestSelfLookupRejected(t *testing.T) {
	eng, err := NewEngine(testGraph(t, 32, 3), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Current().NextHop(5, 5); !errors.Is(err, ErrSelfLookup) {
		t.Fatalf("self lookup: %v", err)
	}
	if _, err := eng.Current().Route(5, 5); !errors.Is(err, ErrSelfLookup) {
		t.Fatalf("self route: %v", err)
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := NewEngine(testGraph(t, 32, 3), "bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

// TestMutatePublishesNewSnapshot: a topology change produces a new snapshot
// whose answers reflect the change, while the old snapshot keeps answering
// from the old topology (immutability).
func TestMutatePublishesNewSnapshot(t *testing.T) {
	g := testGraph(t, 32, 5)
	eng, err := NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	old := eng.Current()
	hadEdge := old.Graph.HasEdge(1, 2)
	snap, err := eng.Mutate(func(g *graph.Graph) error {
		if hadEdge {
			return g.RemoveEdge(1, 2)
		}
		return g.AddEdge(1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != old.Seq+1 {
		t.Fatalf("seq %d after %d", snap.Seq, old.Seq)
	}
	if eng.Current() != snap {
		t.Fatal("mutated snapshot not current")
	}
	if snap.Graph.HasEdge(1, 2) == hadEdge {
		t.Fatal("mutation did not land in the new snapshot")
	}
	if old.Graph.HasEdge(1, 2) != hadEdge {
		t.Fatal("old snapshot's graph was mutated in place")
	}
	// Distances must match each snapshot's own topology.
	wantOld, wantNew := 1, 2
	if !hadEdge {
		wantOld, wantNew = 2, 1
	}
	if old.Dist.Dist(1, 2) != wantOld || snap.Dist.Dist(1, 2) != wantNew {
		t.Fatalf("dist old=%d new=%d, want %d/%d",
			old.Dist.Dist(1, 2), snap.Dist.Dist(1, 2), wantOld, wantNew)
	}
}

// TestMutateErrorKeepsOldSnapshot: a failing mutation publishes nothing.
func TestMutateErrorKeepsOldSnapshot(t *testing.T) {
	eng, err := NewEngine(testGraph(t, 32, 5), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	old := eng.Current()
	boom := errors.New("boom")
	if _, err := eng.Mutate(func(*graph.Graph) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("mutate error: %v", err)
	}
	if eng.Current() != old {
		t.Fatal("failed mutation replaced the snapshot")
	}
	if eng.Swaps() != 1 {
		t.Fatalf("swaps = %d after failed mutation", eng.Swaps())
	}
	// The engine must still be able to mutate successfully afterwards.
	if _, err := eng.Reload(); err != nil {
		t.Fatal(err)
	}
	if eng.Current().Seq != 2 {
		t.Fatalf("seq = %d after reload", eng.Current().Seq)
	}
}

// TestEngineClonesInput: mutating the caller's graph after NewEngine must
// not affect the serving snapshot.
func TestEngineClonesInput(t *testing.T) {
	g := testGraph(t, 32, 9)
	eng, err := NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	had := g.HasEdge(3, 4)
	if had {
		if err := g.RemoveEdge(3, 4); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := g.AddEdge(3, 4); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Current().Graph.HasEdge(3, 4) != had {
		t.Fatal("caller-side mutation leaked into the snapshot")
	}
}
