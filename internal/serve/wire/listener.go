package wire

import (
	"net"
	"sync"

	"routetab/internal/serve"
	"routetab/internal/serve/metrics"
)

// Server serves RTBIN1 over a listener, feeding decoded batches into a
// serve.Server's sharded pool. Connection lifecycle lives here; the per-frame
// hot loop is in server.go.
type Server struct {
	srv *serve.Server

	frames    *metrics.Counter
	badFrames *metrics.Counter
	pairs     *metrics.Counter
	conns     *metrics.Counter

	mu     sync.Mutex
	ln     net.Listener
	active map[net.Conn]bool
	closed bool
	done   chan struct{}
}

// NewServer wraps srv. Metrics land in srv's registry under wire_*.
func NewServer(srv *serve.Server) *Server {
	reg := srv.Metrics()
	return &Server{
		srv:       srv,
		frames:    reg.Counter("wire_frames_total"),
		badFrames: reg.Counter("wire_bad_frames_total"),
		pairs:     reg.Counter("wire_pairs_total"),
		conns:     reg.Counter("wire_conns_total"),
		active:    map[net.Conn]bool{},
		done:      make(chan struct{}),
	}
}

// Serve accepts connections on ln until Close. A Close-triggered accept
// failure returns nil; any other accept error is returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	defer close(s.done)
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.active[conn] = true
		s.mu.Unlock()
		s.conns.Inc()
		go s.serveConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

// Close stops accepting and tears down live connections. Safe to call more
// than once and before Serve.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.active))
	for c := range s.active {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
		<-s.done
	}
	for _, c := range conns {
		c.Close()
	}
}
