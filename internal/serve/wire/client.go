package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"routetab/internal/serve"
)

// Client is a concurrency-safe RTBIN1 client over one persistent TCP
// connection. Concurrent Batch calls pipeline naturally: each call writes
// one framed request under a short lock and parks on its own completion
// channel while a single reader goroutine demultiplexes responses by id.
// It implements cluster.Backend, so hedged Routers can race binary replicas.
type Client struct {
	name string
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex // serialises frame writes and bw

	mu      sync.Mutex
	pending map[uint64]*call
	readErr error // sticky, set once the reader goroutine exits
	closed  bool

	nextID  atomic.Uint64
	encPool sync.Pool // *[]byte request-encoding scratch
}

type call struct {
	done    chan struct{}
	out     []serve.Result // lookup calls
	info    *Info          // info calls
	payload []byte         // reader-owned response body for this call
	err     error
}

// Info describes the remote serving state.
type Info struct {
	Seq    uint64
	N      int
	Scheme string
	Codec  string
}

// Dial connects to an RTBIN1 listener. name labels the backend for routing.
func Dial(name, addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		name:    name,
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: map[uint64]*call{},
	}
	c.encPool.New = func() any { b := make([]byte, 0, 4<<10); return &b }
	go c.readLoop()
	return c, nil
}

// Name implements cluster.Backend.
func (c *Client) Name() string { return c.name }

// Close tears the connection down; in-flight calls fail with net.ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Batch answers len(pairs) lookups in one frame. out must be at least as
// long as pairs; per-lookup failures land in out[i].Err while a returned
// error means the whole exchange failed (connection loss, bad frame).
func (c *Client) Batch(pairs [][2]int, out []serve.Result) error {
	if len(pairs) == 0 {
		return nil
	}
	if len(out) < len(pairs) {
		return fmt.Errorf("wire: out len %d < pairs len %d", len(out), len(pairs))
	}
	if len(pairs) > MaxPairsPerFrame {
		return fmt.Errorf("wire: batch of %d exceeds frame cap %d", len(pairs), MaxPairsPerFrame)
	}
	bufp := c.encPool.Get().(*[]byte)
	payload := (*bufp)[:0]
	for _, p := range pairs {
		var rec [8]byte
		le.PutUint32(rec[0:], uint32(p[0]))
		le.PutUint32(rec[4:], uint32(p[1]))
		payload = append(payload, rec[:]...)
	}
	cl, err := c.roundTrip(typeLookupReq, len(pairs), payload, out[:len(pairs)])
	*bufp = payload
	c.encPool.Put(bufp)
	if err != nil {
		return err
	}
	n := len(cl.payload) / respRecLen
	for i := 0; i < len(pairs); i++ {
		if i < n {
			decodeResultRec(cl.payload[i*respRecLen:], &out[i])
		} else {
			out[i] = serve.Result{Err: io.ErrUnexpectedEOF}
		}
	}
	return nil
}

// LookupBatch aliases Batch under the loadgen.Target method name, so one
// seeded workload can drive in-process, JSON, and binary targets alike.
func (c *Client) LookupBatch(pairs [][2]int, out []serve.Result) error {
	return c.Batch(pairs, out)
}

// Lookup implements cluster.Backend: the error return is reserved for
// transport failures; service-level failures (overload, unavailable) travel
// inside the Result, exactly as the Router's failover logic expects.
func (c *Client) Lookup(src, dst int) (serve.Result, error) {
	var out [1]serve.Result
	if err := c.Batch([][2]int{{src, dst}}, out[:]); err != nil {
		return serve.Result{}, err
	}
	return out[0], nil
}

// Info fetches the remote snapshot header.
func (c *Client) Info() (Info, error) {
	cl, err := c.roundTrip(typeInfoReq, 0, nil, nil)
	if err != nil {
		return Info{}, err
	}
	if cl.info == nil {
		return Info{}, ErrBadFrame
	}
	return *cl.info, nil
}

func (c *Client) roundTrip(typ byte, count int, payload []byte, out []serve.Result) (*call, error) {
	id := c.nextID.Add(1)
	cl := &call{done: make(chan struct{}), out: out}

	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
	c.pending[id] = cl
	c.mu.Unlock()

	c.wmu.Lock()
	hb := appendHeader(nil, typ, count, id, payload)
	_, err := c.bw.Write(hb)
	if err == nil && len(payload) > 0 {
		_, err = c.bw.Write(payload)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	<-cl.done
	if cl.err != nil {
		return nil, cl.err
	}
	return cl, nil
}

// readLoop demultiplexes response frames to their parked callers. Any read
// or protocol error is terminal: the error is propagated to every pending
// and future call, matching the server's close-on-bad-frame behaviour.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [headerLen]byte
	err := func() error {
		for {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return err
			}
			h, err := parseHeader(hdr[:])
			if err != nil {
				return err
			}
			payload := make([]byte, h.length)
			if _, err := io.ReadFull(br, payload); err != nil {
				return err
			}
			if err := h.checkPayload(payload); err != nil {
				return err
			}
			switch h.typ {
			case typeErrorResp:
				return fmt.Errorf("%w: server: %s", ErrBadFrame, payload)
			case typeLookupResp, typeInfoResp:
			default:
				return errUnexpectedType
			}
			c.mu.Lock()
			cl := c.pending[h.id]
			delete(c.pending, h.id)
			c.mu.Unlock()
			if cl == nil {
				return fmt.Errorf("%w: response for unknown id %d", ErrBadFrame, h.id)
			}
			if h.typ == typeInfoResp {
				info, err := parseInfo(payload)
				if err != nil {
					cl.err = err
					close(cl.done)
					return err
				}
				cl.info = &info
			} else {
				cl.payload = payload
			}
			close(cl.done)
		}
	}()
	if err == nil || errors.Is(err, io.EOF) {
		err = net.ErrClosed
	}
	c.mu.Lock()
	c.readErr = err
	pending := c.pending
	c.pending = map[uint64]*call{}
	c.mu.Unlock()
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
}

func parseInfo(payload []byte) (Info, error) {
	if len(payload) < 12 {
		return Info{}, fmt.Errorf("%w: short info payload", ErrBadFrame)
	}
	info := Info{
		Seq: le.Uint64(payload[0:]),
		N:   int(le.Uint32(payload[8:])),
	}
	rest := payload[12:]
	var err error
	if info.Scheme, rest, err = takeString(rest); err != nil {
		return Info{}, err
	}
	if info.Codec, _, err = takeString(rest); err != nil {
		return Info{}, err
	}
	return info, nil
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: short string", ErrBadFrame)
	}
	n := int(le.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("%w: short string body", ErrBadFrame)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
