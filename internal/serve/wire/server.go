// The binary server frame loop. Every per-connection buffer — header,
// payload, decoded pairs, results, encoded response — lives in one connState
// reused across frames, so a steady-state batch request costs at most one
// heap allocation (asserted by TestHandleOneAllocs). Responses are written
// through a bufio.Writer that flushes only when the read side has drained,
// which batches pipelined responses into large writes.
//
//rt:hotpath — make lint bans fmt.Sprintf and map iteration in this file.
package wire

import (
	"bufio"
	"errors"
	"io"
	"net"

	"routetab/internal/serve"
)

type connState struct {
	br      *bufio.Reader
	bw      *bufio.Writer
	hdr     [headerLen]byte
	payload []byte
	pairs   [][2]int
	out     []serve.Result
	wbuf    []byte
}

func newConnState(r io.Reader, w io.Writer) *connState {
	return &connState{
		br: bufio.NewReaderSize(r, 64<<10),
		bw: bufio.NewWriterSize(w, 64<<10),
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.dropConn(conn)
	}()
	cs := newConnState(conn, conn)
	for {
		err := s.handleOne(cs)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				// Tell the peer why before hanging up; framing is lost, so
				// the connection cannot be salvaged.
				s.writeError(cs, err)
			}
			return
		}
		// Pipelining: keep answering buffered requests back-to-back and
		// flush once the peer has nothing more in flight.
		if cs.br.Buffered() == 0 {
			if err := cs.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handleOne reads one frame from cs.br and appends the response to cs.bw.
// It returns io.EOF at a clean end-of-stream and ErrBadFrame on protocol
// violations; the steady lookup path allocates at most once per call.
func (s *Server) handleOne(cs *connState) error {
	if _, err := io.ReadFull(cs.br, cs.hdr[:]); err != nil {
		return err
	}
	h, err := parseHeader(cs.hdr[:])
	if err != nil {
		s.badFrames.Inc()
		return err
	}
	if cap(cs.payload) < h.length {
		cs.payload = make([]byte, h.length)
	}
	payload := cs.payload[:h.length]
	if _, err := io.ReadFull(cs.br, payload); err != nil {
		s.badFrames.Inc()
		return err
	}
	if err := h.checkPayload(payload); err != nil {
		s.badFrames.Inc()
		return err
	}
	s.frames.Inc()
	switch h.typ {
	case typeLookupReq:
		return s.handleLookup(cs, h, payload)
	case typeInfoReq:
		return s.handleInfo(cs, h)
	default:
		s.badFrames.Inc()
		return errUnexpectedType
	}
}

// errUnexpectedType wraps ErrBadFrame by message prefix matching not being
// enough: keep it a real wrapped error so serveConn reports it to the peer.
var errUnexpectedType = &unexpectedTypeError{}

type unexpectedTypeError struct{}

func (*unexpectedTypeError) Error() string { return "wire: bad frame: unexpected frame type" }
func (*unexpectedTypeError) Is(target error) bool {
	return target == ErrBadFrame
}

func (s *Server) handleLookup(cs *connState, h frameHeader, payload []byte) error {
	if cap(cs.pairs) < h.count {
		cs.pairs = make([][2]int, h.count)
		cs.out = make([]serve.Result, h.count)
	}
	pairs, out := cs.pairs[:h.count], cs.out[:h.count]
	for i := range pairs {
		pairs[i] = [2]int{
			int(le.Uint32(payload[i*8:])),
			int(le.Uint32(payload[i*8+4:])),
		}
	}
	s.pairs.Add(uint64(h.count))
	if err := s.srv.LookupBatch(pairs, out); err != nil {
		// Whole-batch rejection: report it per-record so the frame still
		// answers and the connection survives.
		for i := range out {
			out[i] = serve.Result{Err: err}
		}
	}
	cs.wbuf = cs.wbuf[:0]
	for i := range out {
		cs.wbuf = appendResultRec(cs.wbuf, &out[i])
	}
	return s.writeFrame(cs, typeLookupResp, h.count, h.id, cs.wbuf)
}

func (s *Server) handleInfo(cs *connState, h frameHeader) error {
	eng := s.srv.Engine()
	snap := eng.Current()
	cs.wbuf = cs.wbuf[:0]
	var tmp [12]byte
	le.PutUint64(tmp[0:], snap.Seq)
	le.PutUint32(tmp[8:], uint32(snap.Graph.N()))
	cs.wbuf = append(cs.wbuf, tmp[:]...)
	cs.wbuf = appendString(cs.wbuf, snap.Scheme)
	cs.wbuf = appendString(cs.wbuf, eng.Codec())
	return s.writeFrame(cs, typeInfoResp, 0, h.id, cs.wbuf)
}

func appendString(dst []byte, v string) []byte {
	var l [2]byte
	le.PutUint16(l[:], uint16(len(v)))
	return append(append(dst, l[:]...), v...)
}

func (s *Server) writeError(cs *connState, err error) {
	cs.wbuf = append(cs.wbuf[:0], err.Error()...)
	if s.writeFrame(cs, typeErrorResp, 0, 0, cs.wbuf) == nil {
		cs.bw.Flush()
	}
}

// writeFrame reuses the read-header array as write scratch: the request
// header is fully parsed by the time a response is encoded.
func (s *Server) writeFrame(cs *connState, typ byte, count int, id uint64, payload []byte) error {
	hb := appendHeader(cs.hdr[:0], typ, count, id, payload)
	if _, err := cs.bw.Write(hb); err != nil {
		return err
	}
	_, err := cs.bw.Write(payload)
	return err
}
