package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

func newServePair(t *testing.T, n int, seed int64) (*serve.Server, *Server) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2, StretchSampleEvery: -1})
	t.Cleanup(srv.Close)
	return srv, NewServer(srv)
}

func listenAndServe(t *testing.T, ws *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(ws.Close)
	return ln.Addr().String()
}

// TestClientServerRoundTrip: every answer over the wire must match the
// in-process answer bit for bit — next hop, distances, seq, degraded flag.
func TestClientServerRoundTrip(t *testing.T) {
	srv, ws := newServePair(t, 32, 3)
	addr := listenAndServe(t, ws)
	c, err := Dial("primary", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pairs := make([][2]int, 64)
	rng := rand.New(rand.NewSource(9))
	for i := range pairs {
		src := rng.Intn(32) + 1
		dst := rng.Intn(32) + 1
		if dst == src {
			dst = src%32 + 1
		}
		pairs[i] = [2]int{src, dst}
	}
	want := make([]serve.Result, len(pairs))
	if err := srv.LookupBatch(pairs, want); err != nil {
		t.Fatal(err)
	}
	got := make([]serve.Result, len(pairs))
	if err := c.Batch(pairs, got); err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("pair %v: errs %v / %v", pairs[i], got[i].Err, want[i].Err)
		}
		if got[i] != want[i] {
			t.Fatalf("pair %v: wire %+v, in-process %+v", pairs[i], got[i], want[i])
		}
	}

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 32 || info.Scheme != "fulltable" || info.Codec != serve.CodecArena || info.Seq != want[0].Seq {
		t.Fatalf("info = %+v", info)
	}
}

// TestServiceErrorsTravel: self-lookups and other service-level failures
// must come back as typed serve errors inside the Result, with a nil
// transport error — the contract cluster.Router failover depends on.
func TestServiceErrorsTravel(t *testing.T) {
	_, ws := newServePair(t, 16, 2)
	addr := listenAndServe(t, ws)
	c, err := Dial("primary", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Lookup(5, 5)
	if err != nil {
		t.Fatalf("transport error for self-lookup: %v", err)
	}
	if !errors.Is(res.Err, serve.ErrSelfLookup) {
		t.Fatalf("self-lookup err = %v", res.Err)
	}
}

// TestPipelining: many goroutines sharing one client must all get their own
// answers back — the id-demultiplexed pipelining path.
func TestPipelining(t *testing.T) {
	srv, ws := newServePair(t, 32, 3)
	addr := listenAndServe(t, ws)
	c, err := Dial("primary", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pairs := make([][2]int, 16)
			out := make([]serve.Result, 16)
			want := make([]serve.Result, 16)
			for iter := 0; iter < 50; iter++ {
				for i := range pairs {
					src := rng.Intn(32) + 1
					dst := rng.Intn(32) + 1
					if dst == src {
						dst = src%32 + 1
					}
					pairs[i] = [2]int{src, dst}
				}
				if err := c.Batch(pairs, out); err != nil {
					errs <- err
					return
				}
				if err := srv.LookupBatch(pairs, want); err != nil {
					errs <- err
					return
				}
				for i := range out {
					if out[i] != want[i] {
						errs <- errors.New("pipelined answer mismatch")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMalformedFrameRejected: a corrupt frame must provoke an error response
// and a hang-up, and the wire_bad_frames_total counter must move. Covers
// bad magic, CRC damage, truncation mid-frame, oversize payloads, and a
// count/length mismatch.
func TestMalformedFrameRejected(t *testing.T) {
	pairsPayload := func() []byte {
		var p []byte
		var rec [8]byte
		le.PutUint32(rec[0:], 1)
		le.PutUint32(rec[4:], 2)
		return append(p, rec[:]...)
	}()
	valid := appendHeader(nil, typeLookupReq, 1, 42, pairsPayload)
	valid = append(valid, pairsPayload...)

	cases := map[string][]byte{
		"bad magic":   append([]byte("XXXX"), valid[4:]...),
		"bad crc":     flipByte(valid, len(valid)-1),
		"bad type":    flipByte(valid, 4),
		"count zero":  withCount(valid, 0),
		"count big":   withCount(valid, MaxPairsPerFrame+1),
		"oversize":    withLength(valid, maxPayload+1),
		"truncated":   valid[:headerLen+4],
		"header only": valid[:headerLen],
	}
	for name, frame := range cases {
		t.Run(name, func(t *testing.T) {
			srv, ws := newServePair(t, 16, 2)
			addr := listenAndServe(t, ws)
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			conn.(*net.TCPConn).CloseWrite()
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			// The connection must end (error frame optional) without a
			// lookup response ever arriving.
			reply, _ := io.ReadAll(conn)
			if len(reply) >= headerLen {
				h, err := parseHeader(reply[:headerLen])
				if err == nil && h.typ == typeLookupResp {
					t.Fatalf("%s: server answered a corrupt frame", name)
				}
			}
			if srv.Metrics().Counter("wire_bad_frames_total").Value() == 0 {
				t.Fatalf("%s: bad-frame counter did not move", name)
			}
		})
	}
}

func flipByte(frame []byte, i int) []byte {
	mut := bytes.Clone(frame)
	mut[i] ^= 0x41
	return mut
}

func withCount(frame []byte, count int) []byte {
	mut := bytes.Clone(frame)
	le.PutUint16(mut[6:], uint16(count))
	return mut
}

func withLength(frame []byte, length int) []byte {
	mut := bytes.Clone(frame)
	le.PutUint32(mut[16:], uint32(length))
	return mut
}

// TestGoldenFrame pins the wire encoding byte for byte so an accidental
// layout change breaks loudly instead of silently desynchronising peers.
func TestGoldenFrame(t *testing.T) {
	var payload []byte
	var rec [8]byte
	le.PutUint32(rec[0:], 7)
	le.PutUint32(rec[4:], 19)
	payload = append(payload, rec[:]...)
	frame := appendHeader(nil, typeLookupReq, 1, 0x0102030405060708, payload)
	frame = append(frame, payload...)
	want := []byte{
		'R', 'T', 'B', '1', // magic
		1, 0, // type, flags
		1, 0, // count
		8, 7, 6, 5, 4, 3, 2, 1, // id, little-endian
		8, 0, 0, 0, // payload length
		0x8a, 0x8f, 0x37, 0xfd, // crc32c of payload
		7, 0, 0, 0, 19, 0, 0, 0, // (src=7, dst=19)
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame bytes\n got %x\nwant %x", frame, want)
	}

	res := serve.Result{Next: 3, Dist: 2, NextDist: 1, Seq: 9, Degraded: true}
	gotRec := appendResultRec(nil, &res)
	wantRec := []byte{
		3, 0, 0, 0, // next
		2, 0, 1, 0, // dist, nextdist
		1, 0, 0, 0, // flags (degraded), errcode, reserved
		0, 0, 0, 0, // retry-after µs
		9, 0, 0, 0, 0, 0, 0, 0, // seq
	}
	if !bytes.Equal(gotRec, wantRec) {
		t.Fatalf("result record\n got %x\nwant %x", gotRec, wantRec)
	}
}

// TestResultErrorCodes: every serve error must survive the encode/decode
// round trip with its errors.Is identity intact — the chaos grader runs the
// same checks against wire answers as against in-process ones.
func TestResultErrorCodes(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{&serve.OverloadedError{Shard: 3, RetryAfter: 250 * time.Microsecond}, serve.ErrOverloaded},
		{serve.ErrUnavailable, serve.ErrUnavailable},
		{serve.ErrSelfLookup, serve.ErrSelfLookup},
		{serve.ErrClosed, serve.ErrClosed},
		{serve.ErrPanicked, serve.ErrPanicked},
		{errors.New("mystery"), errRemote},
	}
	for _, tc := range cases {
		rec := appendResultRec(nil, &serve.Result{Seq: 5, Err: tc.in})
		var out serve.Result
		decodeResultRec(rec, &out)
		if !errors.Is(out.Err, tc.want) {
			t.Fatalf("%v decoded to %v, want identity with %v", tc.in, out.Err, tc.want)
		}
		if out.Seq != 5 {
			t.Fatalf("%v: seq lost", tc.in)
		}
		var oe *serve.OverloadedError
		if errors.As(tc.in, &oe) {
			var got *serve.OverloadedError
			if !errors.As(out.Err, &got) || got.RetryAfter != oe.RetryAfter {
				t.Fatalf("retry-after hint lost: %v", out.Err)
			}
		}
	}
}

// TestHandleOneAllocs pins the server hot loop's allocation ceiling: one
// pipelined lookup frame costs at most one heap allocation in steady state.
func TestHandleOneAllocs(t *testing.T) {
	_, ws := newServePair(t, 32, 3)

	var payload []byte
	pairs := [][2]int{{1, 9}, {2, 17}, {3, 25}, {4, 31}}
	for _, p := range pairs {
		var rec [8]byte
		le.PutUint32(rec[0:], uint32(p[0]))
		le.PutUint32(rec[4:], uint32(p[1]))
		payload = append(payload, rec[:]...)
	}
	frame := appendHeader(nil, typeLookupReq, len(pairs), 1, payload)
	frame = append(frame, payload...)

	rd := bytes.NewReader(frame)
	cs := newConnState(rd, io.Discard)
	run := func() {
		rd.Reset(frame)
		cs.br.Reset(rd)
		cs.bw.Reset(io.Discard)
		if err := ws.handleOne(cs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(500, run); allocs > 1 {
		t.Fatalf("handleOne allocates %.1f/op, want ≤1", allocs)
	}
}

// TestHedgedRouterOverWire: two binary backends behind a cluster.Router must
// keep answering when one is torn down mid-stream — transport failures
// demote, the survivor serves.
func TestHedgedRouterOverWire(t *testing.T) {
	_, wsA := newServePair(t, 24, 5)
	_, wsB := newServePair(t, 24, 5)
	addrA := listenAndServe(t, wsA)
	addrB := listenAndServe(t, wsB)
	ca, err := Dial("a", addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial("b", addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	rt := cluster.NewRouter([]cluster.Backend{ca, cb}, cluster.RouterOptions{})
	for i := 0; i < 50; i++ {
		res, err := rt.Lookup(1, 13)
		if err != nil || res.Err != nil {
			t.Fatalf("lookup %d: %v / %v", i, err, res.Err)
		}
		if i == 25 {
			wsA.Close() // kill backend a mid-stream; b must carry on
		}
	}
}

// FuzzHandleOne throws arbitrary byte streams at the server frame loop:
// it must never panic or over-read, only answer or reject.
func FuzzHandleOne(f *testing.F) {
	g, err := gengraph.GnHalf(12, rand.New(rand.NewSource(4)))
	if err != nil {
		f.Fatal(err)
	}
	eng, err := serve.NewEngine(g, "fulltable")
	if err != nil {
		f.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 1, StretchSampleEvery: -1})
	defer srv.Close()
	ws := NewServer(srv)

	var payload []byte
	var rec [8]byte
	le.PutUint32(rec[0:], 1)
	le.PutUint32(rec[4:], 5)
	payload = append(payload, rec[:]...)
	valid := appendHeader(nil, typeLookupReq, 1, 9, payload)
	valid = append(valid, payload...)
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add([]byte("RTB1"))
	f.Add([]byte{})
	f.Add(appendHeader(nil, typeInfoReq, 0, 2, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		cs := newConnState(bytes.NewReader(data), io.Discard)
		for {
			if err := ws.handleOne(cs); err != nil {
				break
			}
		}
	})
}
