// Package wire implements RTBIN1, the length-prefixed binary batch protocol
// served beside the JSON HTTP API. One TCP connection carries a pipelined
// stream of frames in both directions; every frame is independently
// CRC-guarded, so a torn or bit-flipped frame is detected before any payload
// is interpreted.
//
// Frame header (24 bytes, little-endian):
//
//	off  size  field
//	0    4     magic "RTB1"
//	4    1     type (1=lookup request, 2=lookup response, 3=info request,
//	           4=info response, 5=error response)
//	5    1     flags (reserved, must be 0)
//	6    2     count — number of payload records
//	8    8     id — request id, echoed verbatim in the response
//	16   4     payload length in bytes
//	20   4     CRC-32C of the payload
//
// Lookup request payload: count × (src u32, dst u32).
// Lookup response payload: count × 24-byte records:
//
//	off  size  field
//	0    4     next hop (0 when errored)
//	4    2     dist (i16, -1 = unreachable)
//	6    2     next dist (i16)
//	8    1     flags (bit0 = degraded)
//	9    1     errcode (see errCode*)
//	10   2     reserved (0)
//	12   4     retry-after hint, microseconds (overloaded only)
//	16   8     snapshot seq
//
// Info response payload: seq u64, n u32, scheme (u16 len + bytes), codec
// (u16 len + bytes). Error response payload: UTF-8 message; the server sends
// one in reply to a malformed frame and then closes the connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"routetab/internal/serve"
)

const (
	headerLen  = 24
	respRecLen = 24

	// MaxPairsPerFrame bounds one lookup batch; larger requests must be
	// split by the caller. Mirrors the HTTP API's 65536 cap scaled down to
	// keep per-connection scratch small.
	MaxPairsPerFrame = 8192

	// maxPayload bounds any frame body: a full response frame is
	// MaxPairsPerFrame·24 bytes, everything else is far smaller.
	maxPayload = MaxPairsPerFrame * respRecLen
)

const (
	typeLookupReq  = 1
	typeLookupResp = 2
	typeInfoReq    = 3
	typeInfoResp   = 4
	typeErrorResp  = 5
)

// Error codes carried in lookup response records.
const (
	errCodeOK          = 0
	errCodeOverloaded  = 1
	errCodeUnavailable = 2
	errCodeSelf        = 3
	errCodeClosed      = 4
	errCodePanicked    = 5
	errCodeOther       = 6
)

var (
	magic    = [4]byte{'R', 'T', 'B', '1'}
	crcTable = crc32.MakeTable(crc32.Castagnoli)

	// ErrBadFrame reports a protocol violation: wrong magic, oversize
	// payload, CRC mismatch, or a count that disagrees with the length.
	ErrBadFrame = errors.New("wire: bad frame")
)

var le = binary.LittleEndian

type frameHeader struct {
	typ    byte
	flags  byte
	count  int
	id     uint64
	length int
	crc    uint32
}

// parseHeader validates the fixed header; payload checks (CRC, count vs
// length) happen in checkPayload once the body has been read.
func parseHeader(hdr []byte) (frameHeader, error) {
	if [4]byte(hdr[:4]) != magic {
		return frameHeader{}, fmt.Errorf("%w: magic %x", ErrBadFrame, hdr[:4])
	}
	h := frameHeader{
		typ:    hdr[4],
		flags:  hdr[5],
		count:  int(le.Uint16(hdr[6:])),
		id:     le.Uint64(hdr[8:]),
		length: int(le.Uint32(hdr[16:])),
		crc:    le.Uint32(hdr[20:]),
	}
	if h.flags != 0 {
		return frameHeader{}, fmt.Errorf("%w: flags %#x", ErrBadFrame, h.flags)
	}
	if h.length > maxPayload {
		return frameHeader{}, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, h.length, maxPayload)
	}
	return h, nil
}

func (h frameHeader) checkPayload(payload []byte) error {
	if crc32.Checksum(payload, crcTable) != h.crc {
		return fmt.Errorf("%w: payload CRC mismatch", ErrBadFrame)
	}
	switch h.typ {
	case typeLookupReq:
		if h.count == 0 || h.count > MaxPairsPerFrame || h.length != h.count*8 {
			return fmt.Errorf("%w: lookup request count %d length %d", ErrBadFrame, h.count, h.length)
		}
	case typeLookupResp:
		if h.length != h.count*respRecLen {
			return fmt.Errorf("%w: lookup response count %d length %d", ErrBadFrame, h.count, h.length)
		}
	case typeInfoReq:
		if h.count != 0 || h.length != 0 {
			return fmt.Errorf("%w: info request with body", ErrBadFrame)
		}
	}
	return nil
}

// appendHeader writes a frame header for the given payload into dst.
func appendHeader(dst []byte, typ byte, count int, id uint64, payload []byte) []byte {
	var hdr [headerLen]byte
	copy(hdr[:4], magic[:])
	hdr[4] = typ
	le.PutUint16(hdr[6:], uint16(count))
	le.PutUint64(hdr[8:], id)
	le.PutUint32(hdr[16:], uint32(len(payload)))
	le.PutUint32(hdr[20:], crc32.Checksum(payload, crcTable))
	return append(dst, hdr[:]...)
}

// appendResultRec encodes one lookup result record.
func appendResultRec(dst []byte, r *serve.Result) []byte {
	var rec [respRecLen]byte
	code, retryUs := errCodeOK, uint32(0)
	if r.Err != nil {
		code, retryUs = encodeErr(r.Err)
	} else {
		le.PutUint32(rec[0:], uint32(r.Next))
		le.PutUint16(rec[4:], uint16(int16(r.Dist)))
		le.PutUint16(rec[6:], uint16(int16(r.NextDist)))
		if r.Degraded {
			rec[8] = 1
		}
	}
	rec[9] = byte(code)
	le.PutUint32(rec[12:], retryUs)
	le.PutUint64(rec[16:], r.Seq)
	return append(dst, rec[:]...)
}

func encodeErr(err error) (code int, retryUs uint32) {
	var ov *serve.OverloadedError
	switch {
	case errors.As(err, &ov):
		us := ov.RetryAfter.Microseconds()
		if us < 0 {
			us = 0
		}
		if us > int64(^uint32(0)) {
			us = int64(^uint32(0))
		}
		return errCodeOverloaded, uint32(us)
	case errors.Is(err, serve.ErrUnavailable):
		return errCodeUnavailable, 0
	case errors.Is(err, serve.ErrSelfLookup):
		return errCodeSelf, 0
	case errors.Is(err, serve.ErrClosed):
		return errCodeClosed, 0
	case errors.Is(err, serve.ErrPanicked):
		return errCodePanicked, 0
	default:
		return errCodeOther, 0
	}
}

// decodeResultRec fills r from one lookup result record.
func decodeResultRec(rec []byte, r *serve.Result) {
	*r = serve.Result{
		Next:     int(le.Uint32(rec[0:])),
		Dist:     int(int16(le.Uint16(rec[4:]))),
		NextDist: int(int16(le.Uint16(rec[6:]))),
		Degraded: rec[8]&1 != 0,
		Seq:      le.Uint64(rec[16:]),
	}
	switch rec[9] {
	case errCodeOK:
	case errCodeOverloaded:
		r.Err = &serve.OverloadedError{
			RetryAfter: time.Duration(le.Uint32(rec[12:])) * time.Microsecond,
		}
		r.Next, r.Dist, r.NextDist = 0, 0, 0
	case errCodeUnavailable:
		r.Err = serve.ErrUnavailable
	case errCodeSelf:
		r.Err = serve.ErrSelfLookup
	case errCodeClosed:
		r.Err = serve.ErrClosed
	case errCodePanicked:
		r.Err = serve.ErrPanicked
	default:
		r.Err = errRemote
	}
	if r.Err != nil {
		r.Next, r.Dist, r.NextDist = 0, 0, 0
	}
}

var errRemote = errors.New("wire: remote lookup error")
