// Self-healing churn repair: the Repairer consumes link/node failure events
// (it implements faultinject.Target, so a seeded fault plan drives it through
// an Injector exactly like netsim), publishes them immediately as a failure
// overlay the server's answer path detours around, and schedules an off-path
// incremental rebuild that removes failed links from the topology and
// atomically swaps the repaired snapshot in.
//
// The split matters for availability: overlay poisoning is O(1) and takes
// effect on the very next lookup (degraded detours, netsim-style, valid on
// the paper's diameter-2 graphs), while the rebuild — the only path that
// restores stretch-1 answers — runs on its own goroutine through the same
// Engine.Mutate machinery as any other topology change. The gap between the
// two is the staleness budget, exposed as serve_repair_staleness.
//
// Node crashes stay overlay-only (the label space {1,…,n} is fixed, so a
// crashed node cannot leave the graph); link failures are incorporated into
// the rebuilt topology and their overlay entries dropped once the swap lands.
// A rebuild that would disconnect the graph is refused and retried after
// further repair events — the service keeps answering degraded rather than
// publishing a snapshot with unreachable destinations.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/graph"
	"routetab/internal/serve/metrics"
)

// ErrRepairClosed reports an event delivered after Repairer.Close.
var ErrRepairClosed = errors.New("serve: repairer closed")

// overlay is one immutable failure view, published whole via an atomic
// pointer (nil = healthy, the zero-cost steady state). Links are keyed
// u<<32|v with u<v.
type overlay struct {
	links map[uint64]bool
	nodes map[int]bool
	// pending counts down links not yet incorporated into the published
	// snapshot — the staleness figure.
	pending int
}

func linkKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

func (o *overlay) linkDown(u, v int) bool { return len(o.links) > 0 && o.links[linkKey(u, v)] }
func (o *overlay) nodeDown(u int) bool    { return len(o.nodes) > 0 && o.nodes[u] }

// RepairOptions configures a Repairer.
type RepairOptions struct {
	// Debounce is how long the rebuild worker waits after an event before
	// rebuilding, so a churn burst coalesces into one rebuild instead of
	// one per link (default 2ms; negative rebuilds immediately).
	Debounce time.Duration
	// Passive disables the rebuild worker entirely: failure events update
	// the overlay (degraded detours take effect immediately) but the
	// topology is never mutated locally. A cluster replica runs passive —
	// its rebuilds arrive as WAL publish records from the primary, and
	// Reconcile folds them into the overlay's incorporated set.
	Passive bool
}

func (o *RepairOptions) setDefaults() {
	if o.Debounce == 0 {
		o.Debounce = 2 * time.Millisecond
	}
	if o.Debounce < 0 {
		o.Debounce = 0
	}
}

// Repairer is the serving layer's churn-repair loop. Wire failure events to
// SetLinkDown/SetNodeDown (or bind a faultinject.Injector to it); it keeps
// the server answering — degraded where necessary — while folding link
// changes into rebuilt snapshots off the hot path.
type Repairer struct {
	srv  *Server
	opts RepairOptions

	mu           sync.Mutex
	downLinks    map[uint64][2]int // desired-down links
	downNodes    map[int]bool      // desired-down nodes (overlay-only)
	incorporated map[uint64][2]int // links currently removed from the engine topology
	closed       bool

	rebuildMu sync.Mutex  // serialises rebuild attempts (loop vs Flush)
	passive   atomic.Bool // no local rebuilds (cluster replica); see Activate
	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	events    *metrics.Counter
	rebuilds  *metrics.Counter
	failures  *metrics.Counter
	rebuildNs *metrics.Histogram
}

// NewRepairer attaches a repair loop to srv and registers its metrics on the
// server's registry. Close it before closing the server.
func NewRepairer(srv *Server, opts RepairOptions) *Repairer {
	opts.setDefaults()
	reg := srv.Metrics()
	r := &Repairer{
		srv:          srv,
		opts:         opts,
		downLinks:    make(map[uint64][2]int),
		downNodes:    make(map[int]bool),
		incorporated: make(map[uint64][2]int),
		kick:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		events:       reg.Counter("serve_repair_events_total"),
		rebuilds:     reg.Counter("serve_repair_rebuilds_total"),
		failures:     reg.Counter("serve_repair_failures_total"),
		rebuildNs:    reg.Histogram("serve_repair_rebuild_ns", metrics.ExponentialBounds(1<<14, 22)), // ~16µs … ~34s
	}
	reg.GaugeFunc("serve_repair_staleness", func() int64 { return int64(r.Staleness()) })
	reg.GaugeFunc("serve_overlay_links_down", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(len(r.downLinks))
	})
	reg.GaugeFunc("serve_overlay_nodes_down", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(len(r.downNodes))
	})
	r.passive.Store(opts.Passive)
	if !opts.Passive {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.loop()
		}()
	}
	return r
}

// Activate flips a passive repairer into the active, rebuilding kind — the
// promotion path: a replica elected primary starts owning its own rebuilds.
// Safe to call once, from the promoting goroutine; a no-op on an already
// active repairer.
func (r *Repairer) Activate() {
	if !r.passive.CompareAndSwap(true, false) {
		return
	}
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.loop()
	}()
	r.schedule()
}

// SetLinkDown implements faultinject.Target: mark the link uv failed (or
// repaired). The overlay updates before this returns — the very next lookup
// detours — and a rebuild is scheduled.
func (r *Repairer) SetLinkDown(u, v int, isDown bool) error {
	n := r.srv.eng.Current().N()
	if u < 1 || u > n || v < 1 || v > n || u == v {
		return fmt.Errorf("serve: repair event on invalid link %d-%d (n=%d)", u, v, n)
	}
	if u > v {
		u, v = v, u
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRepairClosed
	}
	if isDown {
		r.downLinks[linkKey(u, v)] = [2]int{u, v}
	} else {
		delete(r.downLinks, linkKey(u, v))
	}
	r.publishLocked()
	r.mu.Unlock()
	r.events.Inc()
	r.schedule()
	return nil
}

// SetNodeDown implements faultinject.Target: mark node u crashed (or
// recovered). Node state lives in the overlay only; the rebuild keeps the
// full label space.
func (r *Repairer) SetNodeDown(u int, isDown bool) error {
	n := r.srv.eng.Current().N()
	if u < 1 || u > n {
		return fmt.Errorf("serve: repair event on invalid node %d (n=%d)", u, n)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRepairClosed
	}
	if isDown {
		r.downNodes[u] = true
	} else {
		delete(r.downNodes, u)
	}
	r.publishLocked()
	r.mu.Unlock()
	r.events.Inc()
	return nil
}

// publishLocked derives and atomically publishes the overlay from the
// desired state. Caller holds r.mu. A fully healthy, fully incorporated
// state publishes nil, restoring the zero-cost hot path.
func (r *Repairer) publishLocked() {
	if len(r.downLinks) == 0 && len(r.downNodes) == 0 && len(r.incorporated) == 0 {
		r.srv.overlay.Store(nil)
		return
	}
	ov := &overlay{
		links: make(map[uint64]bool, len(r.downLinks)),
		nodes: make(map[int]bool, len(r.downNodes)),
	}
	for k := range r.downLinks {
		ov.links[k] = true
		if _, ok := r.incorporated[k]; !ok {
			ov.pending++
		}
	}
	for u := range r.downNodes {
		ov.nodes[u] = true
	}
	r.srv.overlay.Store(ov)
}

// Staleness reports how many failed links the published snapshot has not yet
// been rebuilt around — the freshness debt degraded detours are covering.
func (r *Repairer) Staleness() int {
	if ov := r.srv.overlay.Load(); ov != nil {
		return ov.pending
	}
	return 0
}

// schedule nudges the rebuild worker (coalescing: one pending nudge is
// enough — the worker always reads the latest desired state).
func (r *Repairer) schedule() {
	if r.passive.Load() {
		return
	}
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Flush runs one synchronous rebuild of everything recorded so far and
// returns its error — the deterministic hook tests and the chaos harness
// use between phases. Passive repairers reconcile instead (their rebuilds
// come from the primary's WAL).
func (r *Repairer) Flush() error {
	if r.passive.Load() {
		r.Reconcile()
		return nil
	}
	return r.rebuild()
}

// DownState returns the currently-desired failure state: links and nodes
// marked down and not yet repaired. The replication layer ships this with a
// full snapshot fetch so a bootstrapping replica starts with the same overlay
// the primary serves through.
func (r *Repairer) DownState() (links [][2]int, nodes []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.downLinks {
		links = append(links, e)
	}
	for u := range r.downNodes {
		nodes = append(nodes, u)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	sort.Ints(nodes)
	return links, nodes
}

// Reconcile recomputes the incorporated set from the engine's current
// topology: a down link absent from the serving graph needs no detour — the
// tables already route around it. Passive repairers call this after applying
// a replicated publish record, so their staleness figure tracks how far the
// replica's snapshot trails the failure state, exactly like the primary's.
func (r *Repairer) Reconcile() {
	g := r.srv.eng.Current().Graph
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.incorporated {
		delete(r.incorporated, k)
	}
	for k, e := range r.downLinks {
		if !g.HasEdge(e[0], e[1]) {
			r.incorporated[k] = e
		}
	}
	r.publishLocked()
}

// Close stops the rebuild worker. Events after Close return ErrRepairClosed;
// the overlay stays as-is (the server may outlive the repairer briefly
// during teardown).
func (r *Repairer) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
}

// loop is the rebuild worker: debounce after a nudge, then rebuild. Failed
// rebuilds (e.g. a removal that would disconnect the graph) stay pending and
// retry on the next event.
func (r *Repairer) loop() {
	for {
		select {
		case <-r.done:
			return
		case <-r.kick:
		}
		if r.opts.Debounce > 0 {
			timer := time.NewTimer(r.opts.Debounce)
			select {
			case <-r.done:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		_ = r.rebuild() // recorded in metrics; retried on the next event
	}
}

// rebuild folds the desired link state into the topology through one
// Engine.Mutate (remove newly failed links, restore repaired ones), refusing
// mutations that would disconnect the graph. On success the incorporated set
// catches up with the desired set and the overlay's pending debt drops to
// zero.
func (r *Repairer) rebuild() error {
	r.rebuildMu.Lock()
	defer r.rebuildMu.Unlock()

	r.mu.Lock()
	toRemove := make([][2]int, 0, len(r.downLinks))
	for k, e := range r.downLinks {
		if _, ok := r.incorporated[k]; !ok {
			toRemove = append(toRemove, e)
		}
	}
	toAdd := make([][2]int, 0)
	for k, e := range r.incorporated {
		if _, ok := r.downLinks[k]; !ok {
			toAdd = append(toAdd, e)
		}
	}
	r.mu.Unlock()
	if len(toRemove) == 0 && len(toAdd) == 0 {
		return nil
	}

	start := time.Now()
	_, err := r.srv.eng.Mutate(func(g *graph.Graph) error {
		for _, e := range toAdd {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return err
			}
		}
		for _, e := range toRemove {
			if err := g.RemoveEdge(e[0], e[1]); err != nil {
				return err
			}
		}
		if !g.IsConnected() {
			return fmt.Errorf("serve: repair rebuild would disconnect the graph (%d links down)", len(toRemove))
		}
		return nil
	})
	r.rebuildNs.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		r.failures.Inc()
		return err
	}
	r.rebuilds.Inc()

	r.mu.Lock()
	for _, e := range toRemove {
		r.incorporated[linkKey(e[0], e[1])] = e
	}
	for _, e := range toAdd {
		delete(r.incorporated, linkKey(e[0], e[1]))
	}
	r.publishLocked()
	r.mu.Unlock()
	return nil
}
