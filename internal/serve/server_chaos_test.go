package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerChaosHookDrop: a dropping hook shed the whole batch with
// structured overload errors (retry-after attached), counted per shard, and
// the server keeps serving once the hook relents.
func TestServerChaosHookDrop(t *testing.T) {
	var dropping atomic.Bool
	s := newTestServer(t, 32, 43, "fulltable", ServerOptions{
		Shards:    1,
		ChaosHook: func(int) bool { return dropping.Load() },
	})
	dropping.Store(true)
	res := s.NextHop(1, 9)
	var oe *OverloadedError
	if !errors.As(res.Err, &oe) {
		t.Fatalf("dropped lookup error: %v", res.Err)
	}
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatal("structured shed does not match ErrOverloaded")
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("shed without retry-after hint: %+v", oe)
	}
	if got := s.Metrics().Counter("serve_sheds_shard_0").Value(); got == 0 {
		t.Fatal("per-shard shed counter not incremented")
	}
	dropping.Store(false)
	if res := s.NextHop(1, 9); res.Err != nil {
		t.Fatalf("server did not recover after drop window: %v", res.Err)
	}
}

// TestServerSurvivesAnswerPanic: a panicking hook must fail the affected
// lookups with ErrPanicked — definite answers, no deadlocked waiters — and
// leave the worker alive for later lookups.
func TestServerSurvivesAnswerPanic(t *testing.T) {
	var bomb atomic.Bool
	s := newTestServer(t, 32, 47, "fulltable", ServerOptions{
		Shards: 1,
		ChaosHook: func(int) bool {
			if bomb.Load() {
				panic("chaos bomb")
			}
			return false
		},
	})
	bomb.Store(true)
	done := make(chan Result, 1)
	go func() { done <- s.NextHop(1, 9) }()
	select {
	case res := <-done:
		if !errors.Is(res.Err, ErrPanicked) {
			t.Fatalf("panicked lookup error: %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lookup deadlocked on a panicked worker")
	}
	if got := s.Metrics().Counter("serve_worker_panics_total").Value(); got == 0 {
		t.Fatal("panic not counted")
	}
	bomb.Store(false)
	if res := s.NextHop(1, 9); res.Err != nil {
		t.Fatalf("server did not survive the panic: %v", res.Err)
	}
}

// TestServerBreakerTripsAndShunts: stall one of two shards while hammering
// it past its queue capacity — the breaker must trip, overflow must shunt to
// the sibling shard (still answered, still correct), and the breaker must
// close again after the stall.
func TestServerBreakerTripsAndShunts(t *testing.T) {
	stallUntil := time.Now().Add(50 * time.Millisecond)
	var stalling atomic.Bool
	s := newTestServer(t, 32, 53, "fulltable", ServerOptions{
		Shards:           2,
		QueueCap:         2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
		ChaosHook: func(shard int) bool {
			if shard == 0 && stalling.Load() {
				if d := time.Until(stallUntil); d > 0 {
					time.Sleep(d)
				}
			}
			return false
		},
	})
	stalling.Store(true)
	// Sources ≡ 0 mod 2 land on shard 0. 16 concurrent clients overflow its
	// 2-slot queue; the breaker trips and the rest shunt to shard 1.
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				res := s.NextHop(2, 9)
				switch {
				case res.Err == nil:
					if res.NextDist != res.Dist-1 {
						t.Errorf("shunted answer wrong: %+v", res)
					}
					served.Add(1)
				case errors.Is(res.Err, ErrOverloaded):
					shed.Add(1)
					time.Sleep(100 * time.Microsecond)
				default:
					t.Errorf("unexpected error: %v", res.Err)
				}
			}
		}()
	}
	wg.Wait()
	stalling.Store(false)
	if s.Metrics().Counter("serve_breaker_trips_total").Value() == 0 {
		t.Fatal("breaker never tripped under stall")
	}
	if s.Metrics().Counter("serve_breaker_shunts_total").Value() == 0 {
		t.Fatal("no lookups shunted to the sibling shard")
	}
	if served.Load() == 0 {
		t.Fatal("stall cliffed availability to zero despite a healthy sibling")
	}
	// After the stall the breaker's half-open probe must close it again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if res := s.NextHop(2, 9); res.Err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the stall cleared")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterHintTracksServiceTime: the hint is positive, bounded, and
// scales with queue capacity.
func TestRetryAfterHintTracksServiceTime(t *testing.T) {
	s := newTestServer(t, 32, 59, "fulltable", ServerOptions{Shards: 1, QueueCap: 4})
	for i := 0; i < 100; i++ {
		if res := s.NextHop(1, 9); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	hint := s.retryAfterHint()
	if hint < 100*time.Microsecond || hint > 50*time.Millisecond {
		t.Fatalf("retry-after hint %v outside clamp band", hint)
	}
}
