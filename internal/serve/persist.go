// Snapshot persistence: deterministic binary codecs for serving snapshots
// plus crash-safe save/load, so a restarted daemon recovers the last
// published snapshot byte-identically instead of cold-rebuilding it.
//
// Two codecs share this file's entry points, distinguished by their 8-byte
// magic. RTARENA1 (arena.go) is what the engine writes: one contiguous
// CRC-32C-guarded buffer whose distance matrix is served in place after load.
// RTSNAP1 is the legacy framed layout — a magic string followed by four
// framed sections, HEAD (seq, scheme, n), EGRF (the paper's canonical E(G)
// edge bits), PORT (the per-node port→neighbour tables), DIST (the packed
// all-pairs byte matrix), each carrying its own length and CRC-32C — still
// decoded so pre-arena snapshot files warm-boot, and still encodable because
// the arena-vs-legacy determinism cross-check pins both. Writes go through a
// temp file and an atomic rename: a crash mid-save can never corrupt the
// previous good file.
//
// Determinism: both encoders are pure functions of the snapshot's logical
// content (little-endian, no maps iterated, no timestamps), so golden-file
// tests pin each format and two engines that published byte-identical tables
// persist byte-identical files.
package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// ErrBadSnapshotFile reports a snapshot file that failed structural or
// checksum validation.
var ErrBadSnapshotFile = errors.New("serve: bad snapshot file")

// snapMagic identifies format version 1; bump it on any layout change.
var snapMagic = [8]byte{'R', 'T', 'S', 'N', 'A', 'P', '1', '\n'}

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section tags, in mandatory file order.
var (
	tagHead = [4]byte{'H', 'E', 'A', 'D'}
	tagGraf = [4]byte{'E', 'G', 'R', 'F'}
	tagPort = [4]byte{'P', 'O', 'R', 'T'}
	tagDist = [4]byte{'D', 'I', 'S', 'T'}
)

// maxSectionLen bounds a section frame so a corrupt length field cannot ask
// the decoder to allocate gigabytes (n=4096 DIST is 16 MiB; 256 MiB is head
// room, not a target).
const maxSectionLen = 256 << 20

// SnapshotData is the decoded content of a persisted snapshot: everything a
// deterministic rebuild needs to reproduce the published tables without
// recomputing distances.
type SnapshotData struct {
	Seq    uint64
	Scheme string
	Graph  *graph.Graph
	Ports  *graph.Ports
	// Dist is the all-pairs matrix (TierFull). Nil on tiered snapshots, which
	// carry Tables instead — exactly one of the two is set.
	Dist *shortestpath.Distances
	// Tables is the compact scheme's deterministic table encoding (TierTables).
	Tables []byte
}

// WriteFrame writes one CRC-framed payload: tag, little-endian length,
// CRC-32C (Castagnoli), bytes. It is the one framing primitive shared by the
// snapshot codec and the cluster WAL (internal/cluster), so torn or
// bit-flipped sections are rejected identically everywhere.
func WriteFrame(w io.Writer, tag [4]byte, payload []byte) error {
	return writeSection(w, tag, payload)
}

// ReadFrame reads and checksums one framed payload, enforcing the tag. A
// short read, wrong tag, oversized length claim, or checksum mismatch returns
// an error wrapping ErrBadSnapshotFile.
func ReadFrame(r io.Reader, tag [4]byte) ([]byte, error) {
	return readSection(r, tag)
}

// writeSection frames one payload: tag, length, CRC-32C, bytes.
func writeSection(w io.Writer, tag [4]byte, payload []byte) error {
	var hdr [12]byte
	copy(hdr[:4], tag[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readSection reads and checksums one framed payload, enforcing the tag.
func readSection(r io.Reader, tag [4]byte) ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: section %s header: %v", ErrBadSnapshotFile, tag, err)
	}
	if !bytes.Equal(hdr[:4], tag[:]) {
		return nil, fmt.Errorf("%w: section tag %q, want %q", ErrBadSnapshotFile, hdr[:4], tag)
	}
	length := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxSectionLen {
		return nil, fmt.Errorf("%w: section %s claims %d bytes", ErrBadSnapshotFile, tag, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: section %s body: %v", ErrBadSnapshotFile, tag, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[8:12]); got != want {
		return nil, fmt.Errorf("%w: section %s checksum %08x, want %08x", ErrBadSnapshotFile, tag, got, want)
	}
	return payload, nil
}

// EncodeSnapshot writes s in the persistent format. The output is a pure
// function of (Seq, Scheme, graph, ports, distances).
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	return EncodeSnapshotData(w, &SnapshotData{
		Seq: s.Seq, Scheme: s.Scheme, Graph: s.Graph, Ports: s.Ports, Dist: s.Dist, Tables: s.tables,
	})
}

// EncodeSnapshotData writes the decoded form in the same persistent format —
// the replication layer ships fetched cluster state through it without first
// rebuilding a serving snapshot.
func EncodeSnapshotData(w io.Writer, s *SnapshotData) error {
	if s.Dist == nil {
		// The framed legacy layout predates tiering and has no TBLS section;
		// tiered snapshots persist through the arena codec only.
		return fmt.Errorf("serve: legacy codec cannot encode a tables-tier snapshot (use EncodeArena)")
	}
	if _, err := w.Write(snapMagic[:]); err != nil {
		return err
	}
	n := s.Graph.N()

	head := make([]byte, 0, 16+len(s.Scheme))
	head = binary.LittleEndian.AppendUint64(head, s.Seq)
	head = binary.LittleEndian.AppendUint32(head, uint32(n))
	head = binary.LittleEndian.AppendUint16(head, uint16(len(s.Scheme)))
	head = append(head, s.Scheme...)
	if err := writeSection(w, tagHead, head); err != nil {
		return err
	}

	code := s.Graph.EncodeBytes()
	egrf := make([]byte, 0, 4+len(code))
	egrf = binary.LittleEndian.AppendUint32(egrf, uint32(s.Graph.M()))
	egrf = append(egrf, code...)
	if err := writeSection(w, tagGraf, egrf); err != nil {
		return err
	}

	var ports []byte
	for u := 1; u <= n; u++ {
		row := s.Ports.NeighborsByPort(u)
		ports = binary.LittleEndian.AppendUint32(ports, uint32(len(row)))
		for _, v := range row {
			ports = binary.LittleEndian.AppendUint32(ports, uint32(v))
		}
	}
	if err := writeSection(w, tagPort, ports); err != nil {
		return err
	}

	return writeSection(w, tagDist, s.Dist.Packed())
}

// DecodeSnapshot parses and validates a persisted snapshot, sniffing the
// 8-byte magic to dispatch between the arena codec (RTARENA1, what the
// engine writes) and the legacy framed codec (RTSNAP1, pre-arena files).
// Every structural claim is checked (magic, lengths, CRCs, port-table
// consistency against the decoded graph), so feeding it arbitrary bytes
// returns an error, never a corrupt serving state.
func DecodeSnapshot(r io.Reader) (*SnapshotData, error) {
	sd, _, err := DecodeSnapshotCodec(r)
	return sd, err
}

// DecodeSnapshotCodec is DecodeSnapshot, additionally reporting which codec
// (CodecArena or CodecLegacy) the bytes carried.
func DecodeSnapshotCodec(r io.Reader) (*SnapshotData, string, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, "", fmt.Errorf("%w: magic: %v", ErrBadSnapshotFile, err)
	}
	switch magic {
	case arenaMagic, arena2Magic:
		a, err := readArena(r, magic)
		if err != nil {
			return nil, "", err
		}
		sd, err := a.SnapshotData()
		if err != nil {
			return nil, "", err
		}
		return sd, CodecArena, nil
	case snapMagic:
		sd, err := decodeLegacyBody(r)
		if err != nil {
			return nil, "", err
		}
		return sd, CodecLegacy, nil
	}
	return nil, "", fmt.Errorf("%w: magic %q", ErrBadSnapshotFile, magic[:])
}

// decodeLegacyBody parses the RTSNAP1 framed sections after the magic has
// been consumed.
func decodeLegacyBody(r io.Reader) (*SnapshotData, error) {
	head, err := readSection(r, tagHead)
	if err != nil {
		return nil, err
	}
	if len(head) < 14 {
		return nil, fmt.Errorf("%w: HEAD of %d bytes", ErrBadSnapshotFile, len(head))
	}
	seq := binary.LittleEndian.Uint64(head[0:8])
	n := int(binary.LittleEndian.Uint32(head[8:12]))
	schemeLen := int(binary.LittleEndian.Uint16(head[12:14]))
	if len(head) != 14+schemeLen {
		return nil, fmt.Errorf("%w: HEAD of %d bytes, want %d", ErrBadSnapshotFile, len(head), 14+schemeLen)
	}
	scheme := string(head[14:])
	if !KnownScheme(scheme) {
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadSnapshotFile, scheme)
	}
	// n=4096 (the largest sweep scale) costs a 16 MiB DIST section; cap well
	// above it so a corrupt HEAD cannot demand absurd allocations.
	if n < 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadSnapshotFile, n)
	}

	egrf, err := readSection(r, tagGraf)
	if err != nil {
		return nil, err
	}
	wantBytes := (graph.EdgeCodeLen(n) + 7) / 8
	if len(egrf) != 4+wantBytes {
		return nil, fmt.Errorf("%w: EGRF of %d bytes, want %d", ErrBadSnapshotFile, len(egrf), 4+wantBytes)
	}
	m := int(binary.LittleEndian.Uint32(egrf[0:4]))
	g, err := graph.DecodeBytes(egrf[4:], n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}
	if g.M() != m {
		return nil, fmt.Errorf("%w: %d edges decoded, header says %d", ErrBadSnapshotFile, g.M(), m)
	}

	portsRaw, err := readSection(r, tagPort)
	if err != nil {
		return nil, err
	}
	ports, err := decodePorts(g, portsRaw)
	if err != nil {
		return nil, err
	}

	distRaw, err := readSection(r, tagDist)
	if err != nil {
		return nil, err
	}
	if len(distRaw) != n*n {
		return nil, fmt.Errorf("%w: DIST of %d bytes, want %d", ErrBadSnapshotFile, len(distRaw), n*n)
	}
	dm, err := shortestpath.FromPacked(n, distRaw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}

	return &SnapshotData{Seq: seq, Scheme: scheme, Graph: g, Ports: ports, Dist: dm}, nil
}

// decodePorts rebuilds a port assignment from its wire form, expressing it as
// per-node permutations of the sorted neighbour list so graph.PermutedPorts
// performs the bijection validation.
func decodePorts(g *graph.Graph, raw []byte) (*graph.Ports, error) {
	n := g.N()
	perms := make([][]int, n+1)
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(raw[off : off+4])
		off += 4
		return v, true
	}
	for u := 1; u <= n; u++ {
		deg, ok := u32()
		if !ok || int(deg) != g.Degree(u) {
			return nil, fmt.Errorf("%w: PORT degree of node %d", ErrBadSnapshotFile, u)
		}
		sorted := g.Neighbors(u)
		index := make(map[int]int, len(sorted))
		for i, v := range sorted {
			index[v] = i
		}
		perm := make([]int, deg)
		for i := range perm {
			v, ok := u32()
			if !ok {
				return nil, fmt.Errorf("%w: PORT truncated at node %d", ErrBadSnapshotFile, u)
			}
			idx, adj := index[int(v)]
			if !adj {
				return nil, fmt.Errorf("%w: PORT of node %d lists non-neighbour %d", ErrBadSnapshotFile, u, v)
			}
			perm[i] = idx
		}
		perms[u] = perm
	}
	if off != len(raw) {
		return nil, fmt.Errorf("%w: PORT has %d trailing bytes", ErrBadSnapshotFile, len(raw)-off)
	}
	ports, err := graph.PermutedPorts(g, perms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}
	return ports, nil
}

// SaveSnapshot writes s to path crash-safely in the arena codec: encode to
// one contiguous buffer, write it to a unique temp file in the same directory
// with a single Write, fsync, then atomically rename over path. Readers (and
// a process that crashes mid-save) only ever observe complete files.
func SaveSnapshot(path string, s *Snapshot) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	buf := EncodeArena(&SnapshotData{
		Seq: s.Seq, Scheme: s.Scheme, Graph: s.Graph, Ports: s.Ports, Dist: s.Dist, Tables: s.tables,
	})
	if _, err := tmp.Write(buf); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// LoadSnapshot reads and validates the snapshot file at path.
func LoadSnapshot(path string) (*SnapshotData, error) {
	sd, _, err := LoadSnapshotCodec(path)
	return sd, err
}

// LoadSnapshotCodec reads and validates the snapshot file at path, reporting
// the codec it was written in. Arena files take the zero-copy path: the whole
// file lands in memory with one ReadFile, is validated in place, and its
// distance matrix is served aliased to that buffer — no second copy.
func LoadSnapshotCodec(path string) (*SnapshotData, string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	if len(buf) >= 8 && ([8]byte(buf[:8]) == arenaMagic || [8]byte(buf[:8]) == arena2Magic) {
		a, err := OpenArena(buf)
		if err != nil {
			return nil, "", err
		}
		sd, err := a.SnapshotData()
		if err != nil {
			return nil, "", err
		}
		return sd, CodecArena, nil
	}
	return DecodeSnapshotCodec(bytes.NewReader(buf))
}

// Adopt atomically replaces the engine's topology and published snapshot
// with sd — the full-snapshot fallback path of a cluster replica that
// detected WAL divergence. The adopted snapshot publishes with sd.Seq (the
// sequence is the remote primary's, not the local mutation count) so later
// replicated mutations continue it. The publish hook is not invoked:
// adoption replays remote state rather than originating a change.
func (e *Engine) Adopt(sd *SnapshotData) error {
	if sd.Scheme != e.scheme {
		return fmt.Errorf("serve: adopting %q snapshot into %q engine", sd.Scheme, e.scheme)
	}
	snap, err := snapshotFromData(sd)
	if err != nil {
		return err
	}
	if snap.Tier != e.tier {
		return fmt.Errorf("serve: adopting %s-tier snapshot into %s-tier engine", snap.Tier, e.tier)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.g = sd.Graph
	if sd.Dist != nil {
		e.cache.Put(sd.Graph, sd.Dist)
	}
	if snap.Tier == TierTables {
		// The adopted table blob carries the remote owned set (possibly nil);
		// later local rebuilds must restrict identically or diverge.
		e.owned = snap.owned
	} else {
		// The full-tier matrix encodes no ownership: keep the engine's
		// serve-level restriction sticky across adoption.
		snap.owned = e.owned
	}
	e.cur.Store(snap)
	e.swaps.Store(sd.Seq)
	return e.saveLocked(snap)
}

// snapshotFromData rebuilds a serving snapshot from decoded snapshot data on
// whichever tier the data carries: a matrix rebuilds the scheme under the
// determinism contract, a table blob decodes the scheme directly (no distance
// computation at all — the tiered warm boot is O(tables), not O(n²)).
func snapshotFromData(sd *SnapshotData) (*Snapshot, error) {
	var (
		scheme routing.Scheme
		est    DistEstimator
		tier   = TierFull
	)
	var owned *keyspace.Set
	if sd.Dist == nil {
		ts, err := DecodeTableScheme(sd.Scheme, sd.Graph, sd.Ports, sd.Tables)
		if err != nil {
			return nil, err
		}
		scheme, est, tier = ts, ts, TierTables
		// A keyspace-restricted table blob carries its owned set; the rebuilt
		// snapshot enforces the same restriction the encoder did.
		if ow, ok := ts.(interface{ Owned() *keyspace.Set }); ok {
			owned = ow.Owned()
		}
	} else {
		var err error
		scheme, err = BuildScheme(sd.Scheme, sd.Graph, sd.Ports, sd.Dist)
		if err != nil {
			return nil, err
		}
	}
	sim, err := routing.NewSim(sd.Graph, sd.Ports, scheme)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Seq:      sd.Seq,
		Scheme:   sd.Scheme,
		Graph:    sd.Graph,
		Ports:    sd.Ports,
		Dist:     sd.Dist,
		Tier:     tier,
		scheme:   scheme,
		sim:      sim,
		hopLimit: routing.DefaultHopLimit(sd.Graph.N()),
		est:      est,
		tables:   sd.Tables,
		owned:    owned,
	}, nil
}

// RestoreEngine rebuilds a serving engine from a persisted snapshot without
// recomputing distances — see NewEngineFromSnapshot for the contract. The
// engine's Codec reports which codec the file carried (a legacy warm boot
// still writes arena files from its next save on).
func RestoreEngine(path string) (*Engine, error) {
	sd, codec, err := LoadSnapshotCodec(path)
	if err != nil {
		return nil, err
	}
	eng, err := NewEngineFromSnapshot(sd)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring %s: %w", path, err)
	}
	eng.codec = codec
	return eng, nil
}

// NewEngineFromSnapshot builds a serving engine directly from decoded
// snapshot data without recomputing distances: the packed matrix is adopted
// as ground truth (and seeded into the engine's rebuild cache), the scheme is
// reconstructed from (graph, ports, matrix) under the determinism contract of
// DESIGN.md §8, and the snapshot publishes with its original Seq so later
// mutations continue the sequence. Both the crash-restore path and a cluster
// replica bootstrapping from a fetched primary state go through here.
func NewEngineFromSnapshot(sd *SnapshotData) (*Engine, error) {
	snap, err := snapshotFromData(sd)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:      sd.Graph,
		scheme: sd.Scheme,
		tier:   snap.Tier,
		codec:  CodecArena,
		cache:  shortestpath.NewCache(2),
		owned:  snap.owned,
	}
	if sd.Dist != nil {
		e.cache.Put(sd.Graph, sd.Dist)
	}
	e.cur.Store(snap)
	e.swaps.Store(sd.Seq)
	return e, nil
}
