package serve

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHalfOpenSingleProbe pins the breaker's half-open contract under
// concurrent submitters: once the cooldown expires, exactly one caller is
// admitted as the probe while every concurrent rival keeps seeing the breaker
// open; the probe's outcome then either closes the breaker for everyone or
// re-arms the cooldown with the probing flag released. Run with -race.
func TestHalfOpenSingleProbe(t *testing.T) {
	s := newTestServer(t, 32, 7, "fulltable", ServerOptions{
		Shards:           2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	})
	now := time.Now().UnixNano()

	// Trip shard 0's breaker.
	s.noteSubmitFail(0, now)
	s.noteSubmitFail(0, now)
	if !s.breakerOpen(0, now) {
		t.Fatal("breaker not open after threshold failures")
	}

	// Past the cooldown deadline: N concurrent submitters race for the probe.
	after := now + s.opts.BreakerCooldown.Nanoseconds() + 1
	const rivals = 64
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < rivals; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !s.breakerOpen(0, after) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", got)
	}

	// Probe fails: cooldown re-arms, and after it expires again exactly one
	// new probe is admitted (the probing flag was released, not leaked).
	s.noteSubmitFail(0, after)
	if !s.breakerOpen(0, after) {
		t.Fatal("breaker not re-armed after failed probe")
	}
	later := after + s.opts.BreakerCooldown.Nanoseconds() + 1
	admitted.Store(0)
	for i := 0; i < rivals; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !s.breakerOpen(0, later) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second half-open admitted %d probes, want exactly 1", got)
	}

	// Probe succeeds: the breaker closes for everyone.
	s.noteSubmitOK(0)
	for i := 0; i < rivals; i++ {
		if s.breakerOpen(0, later) {
			t.Fatal("breaker still open after successful probe")
		}
	}
}

// TestRetryAfterJitterBounds pins the shed hint's jitter band: every draw
// stays within ×0.75…×1.25 of the un-jittered drain estimate (before the
// absolute clamp), draws are not all identical (no lockstep retries), and the
// absolute floor/ceiling still hold.
func TestRetryAfterJitterBounds(t *testing.T) {
	s := newTestServer(t, 32, 7, "fulltable", ServerOptions{Shards: 1, QueueCap: 100})

	// Mid-band base: 20µs × 100 = 2ms, far from both clamps.
	s.avgJobNs.Store(int64(20 * time.Microsecond))
	base := 20 * time.Microsecond * 100
	lo := base * retryJitterLoNum / retryJitterDen
	hi := base * retryJitterHiNum / retryJitterDen
	seen := make(map[time.Duration]bool)
	for i := 0; i < 1000; i++ {
		d := s.retryAfterHint()
		if d < lo || d >= hi {
			t.Fatalf("hint %v outside jitter band [%v, %v)", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("1000 hints collapsed to %d distinct values — no jitter", len(seen))
	}

	// Ceiling: a huge base must still clamp to 50ms even after ×1.25.
	s.avgJobNs.Store(int64(time.Millisecond))
	for i := 0; i < 100; i++ {
		if d := s.retryAfterHint(); d > 50*time.Millisecond {
			t.Fatalf("hint %v above the 50ms ceiling", d)
		}
	}
	// Floor: a tiny base must still clamp up to 100µs even after ×0.75.
	s.avgJobNs.Store(1)
	for i := 0; i < 100; i++ {
		if d := s.retryAfterHint(); d < 100*time.Microsecond {
			t.Fatalf("hint %v below the 100µs floor", d)
		}
	}
}

// TestFlushPersistShutdown is the shutdown-flush regression test: a daemon's
// SIGTERM path calls Engine.FlushPersist after draining, and that flush must
// rewrite the snapshot file even when the publish-time save is gone (e.g. it
// failed transiently, or the file was rotated away) — so the freshest state
// is on disk at exit.
func TestFlushPersistShutdown(t *testing.T) {
	eng, err := NewEngine(testGraph(t, 32, 9), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.rtsnap")
	if err := eng.EnablePersist(path); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reload(); err != nil {
		t.Fatal(err)
	}
	want := eng.Current().Seq

	// Simulate a lost publish-time save: the file vanishes between the last
	// publication and shutdown.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushPersist(); err != nil {
		t.Fatal(err)
	}
	sd, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("snapshot unreadable after shutdown flush: %v", err)
	}
	if sd.Seq != want {
		t.Fatalf("flushed seq %d, current %d", sd.Seq, want)
	}
	if !eng.Current().Graph.Equal(sd.Graph) {
		t.Fatal("flushed topology differs from the serving snapshot")
	}
}
