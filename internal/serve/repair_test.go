package serve

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newServerWithRepairer(t *testing.T, n int, seed int64, opts ServerOptions) (*Server, *Repairer) {
	t.Helper()
	s := newTestServer(t, n, seed, "fulltable", opts)
	// Debounce negative = rebuild immediately after each event; tests still
	// use Flush for deterministic synchronisation.
	r := NewRepairer(s, RepairOptions{Debounce: -1})
	t.Cleanup(r.Close)
	return s, r
}

// pickServedEdge finds a (src,dst) pair whose scheme answer forwards over a
// direct edge src-next we can fail.
func pickServedEdge(t *testing.T, s *Server) (src, dst, next int) {
	t.Helper()
	snap := s.eng.Current()
	n := snap.N()
	for src := 1; src <= n; src++ {
		for dst := 1; dst <= n; dst++ {
			if src == dst {
				continue
			}
			res := s.NextHop(src, dst)
			if res.Err == nil && res.Dist >= 2 {
				return src, dst, res.Next
			}
		}
	}
	t.Fatal("no multi-hop pair found")
	return 0, 0, 0
}

// TestRepairerDegradedThenHealed is the self-healing lifecycle: fail the
// serving next-hop link → the very next lookup detours (degraded, within the
// +2 budget) → the rebuild lands → answers are strict shortest-path again on
// a topology without the link → repair the link → byte-identical return to
// the original tables.
func TestRepairerDegradedThenHealed(t *testing.T) {
	s, r := newServerWithRepairer(t, 48, 19, ServerOptions{Shards: 2})
	baseline := append([]byte(nil), s.eng.Current().Dist.Packed()...)
	src, dst, next := pickServedEdge(t, s)

	if err := r.SetLinkDown(src, next, true); err != nil {
		t.Fatal(err)
	}
	// Overlay is synchronous: this lookup must not cross the failed link.
	res := s.NextHop(src, dst)
	if res.Err == nil && res.Next == next && !res.Degraded {
		// The rebuild may already have landed (new snapshot routes around
		// the link) — then next is fine only if the link is out of the graph.
		if s.eng.Current().Graph.HasEdge(src, next) {
			t.Fatalf("lookup crossed a failed link: %+v", res)
		}
	}
	if res.Err == nil && res.Degraded {
		if res.NextDist < 0 || 1+res.NextDist > res.Dist+2 {
			t.Fatalf("degraded answer outside +2 budget: %+v", res)
		}
	}

	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Staleness() != 0 {
		t.Fatalf("staleness %d after flush", r.Staleness())
	}
	snap := s.eng.Current()
	if snap.Graph.HasEdge(src, next) {
		t.Fatal("rebuilt snapshot still contains the failed link")
	}
	// Strict answers again, on the repaired topology.
	res = s.NextHop(src, dst)
	if res.Err != nil || res.Degraded || res.NextDist != res.Dist-1 {
		t.Fatalf("post-rebuild answer not strict: %+v", res)
	}

	if err := r.SetLinkDown(src, next, false); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.eng.Current().Dist.Packed(), baseline) {
		t.Fatal("repairing the link did not restore byte-identical tables")
	}
	if got := s.Metrics().Counter("serve_repair_events_total").Value(); got != 2 {
		t.Fatalf("repair events = %d, want 2", got)
	}
}

// TestRepairerNodeCrash: lookups from or to a crashed node are honestly
// unavailable; unrelated lookups still work; recovery restores everything
// without any rebuild (node state is overlay-only).
func TestRepairerNodeCrash(t *testing.T) {
	s, r := newServerWithRepairer(t, 32, 23, ServerOptions{Shards: 2})
	swapsBefore := s.eng.Swaps()
	if err := r.SetNodeDown(5, true); err != nil {
		t.Fatal(err)
	}
	if res := s.NextHop(5, 9); !errors.Is(res.Err, ErrUnavailable) {
		t.Fatalf("lookup from crashed node: %+v", res)
	}
	if res := s.NextHop(9, 5); !errors.Is(res.Err, ErrUnavailable) {
		t.Fatalf("lookup to crashed node: %+v", res)
	}
	res := s.NextHop(1, 2)
	if res.Err != nil {
		t.Fatalf("unrelated lookup failed: %v", res.Err)
	}
	if res.Next == 5 && !res.Degraded {
		t.Fatalf("forwarded into a crashed node non-degraded: %+v", res)
	}
	if err := r.SetNodeDown(5, false); err != nil {
		t.Fatal(err)
	}
	if res := s.NextHop(5, 9); res.Err != nil {
		t.Fatalf("recovered node still unavailable: %v", res.Err)
	}
	if s.eng.Swaps() != swapsBefore {
		t.Fatalf("node crash triggered a rebuild (swaps %d → %d)", swapsBefore, s.eng.Swaps())
	}
}

// TestRepairerRefusesDisconnect: failing every link of one node must leave
// the snapshot topology untouched (the rebuild would disconnect the graph),
// keep serving degraded/unavailable, and heal cleanly on repair.
func TestRepairerRefusesDisconnect(t *testing.T) {
	s, r := newServerWithRepairer(t, 24, 29, ServerOptions{Shards: 2})
	snap := s.eng.Current()
	victim := 7
	nbrs := append([]int(nil), snap.Graph.Neighbors(victim)...)
	for _, w := range nbrs {
		if err := r.SetLinkDown(victim, w, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err == nil {
		t.Fatal("disconnecting rebuild was not refused")
	}
	if got := s.eng.Current().Seq; got != snap.Seq {
		t.Fatalf("refused rebuild still published (seq %d → %d)", snap.Seq, got)
	}
	if s.Metrics().Counter("serve_repair_failures_total").Value() == 0 {
		t.Fatal("refused rebuild not counted")
	}
	// The victim is effectively cut off: lookups toward it are unavailable,
	// not wrong.
	res := s.NextHop(victim, (victim%s.eng.Current().N())+1)
	if res.Err == nil && !res.Degraded {
		t.Fatalf("lookup from cut-off node answered non-degraded: %+v", res)
	}
	for _, w := range nbrs {
		if err := r.SetLinkDown(victim, w, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("healing flush failed: %v", err)
	}
	if res := s.NextHop(victim, nbrs[0]); res.Err != nil || res.Degraded {
		t.Fatalf("healed lookup: %+v", res)
	}
}

// TestRepairerDeterministicRebuilds: two independent engines fed the same
// failure sequence publish byte-identical rebuilt tables — the DESIGN.md §8
// contract extended to the repair path.
func TestRepairerDeterministicRebuilds(t *testing.T) {
	mk := func() (*Server, *Repairer) { return newServerWithRepairer(t, 32, 31, ServerOptions{Shards: 1}) }
	s1, r1 := mk()
	s2, r2 := mk()
	events := [][2]int{{1, 2}, {3, 4}, {5, 6}}
	for _, e := range events {
		if s1.eng.Current().Graph.HasEdge(e[0], e[1]) {
			if err := r1.SetLinkDown(e[0], e[1], true); err != nil {
				t.Fatal(err)
			}
			if err := r2.SetLinkDown(e[0], e[1], true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Flush(); err != nil {
		t.Fatal(err)
	}
	a, b := s1.eng.Current(), s2.eng.Current()
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("rebuilt graphs differ")
	}
	if !bytes.Equal(a.Dist.Packed(), b.Dist.Packed()) {
		t.Fatal("rebuilt distance tables not byte-identical")
	}
}

// TestRepairerValidation: out-of-range events are rejected, events after
// Close return ErrRepairClosed.
func TestRepairerValidation(t *testing.T) {
	s := newTestServer(t, 16, 37, "fulltable", ServerOptions{Shards: 1})
	r := NewRepairer(s, RepairOptions{})
	if err := r.SetLinkDown(0, 5, true); err == nil {
		t.Fatal("link 0-5 accepted")
	}
	if err := r.SetLinkDown(3, 3, true); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := r.SetNodeDown(17, true); err == nil {
		t.Fatal("node 17 accepted on n=16")
	}
	r.Close()
	if err := r.SetLinkDown(1, 2, true); !errors.Is(err, ErrRepairClosed) {
		t.Fatalf("post-close event: %v", err)
	}
	if err := r.SetNodeDown(1, true); !errors.Is(err, ErrRepairClosed) {
		t.Fatalf("post-close node event: %v", err)
	}
}

// TestRepairerDebouncedLoop: the background loop (positive debounce) also
// lands rebuilds without explicit Flush.
func TestRepairerDebouncedLoop(t *testing.T) {
	s := newTestServer(t, 24, 41, "fulltable", ServerOptions{Shards: 1})
	r := NewRepairer(s, RepairOptions{Debounce: time.Millisecond})
	t.Cleanup(r.Close)
	src, _, next := pickServedEdge(t, s)
	if err := r.SetLinkDown(src, next, true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.eng.Current().Graph.HasEdge(src, next) {
		if time.Now().After(deadline) {
			t.Fatal("background rebuild never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if r.Staleness() != 0 {
		t.Fatalf("staleness %d after background rebuild", r.Staleness())
	}
}
