// Package loadgen is the closed-loop load generator for the serving layer:
// a fixed set of client workers, each issuing seeded batched lookups
// back-to-back (a new batch only after the previous one is answered), with
// every answer validated against the serving snapshot's shortest-path ground
// truth. Closed-loop means offered load adapts to the server — the generator
// measures sustainable throughput and its latency, not queue explosion.
//
// Determinism: the query mix is a pure function of (Seed, worker index,
// batch number) — every run offers the same lookups in the same per-worker
// order. Wall-clock figures (QPS, latency quantiles) are host-dependent,
// like every timing in BENCH artefacts.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/metrics"
	"routetab/internal/serve/spotgrade"
)

// Validation selects how each answer is judged.
type Validation int

const (
	// ValidateAuto picks ValidateStrict for shortest-path schemes
	// (fulltable, compact, fullinfo) and ValidateProgress otherwise.
	ValidateAuto Validation = iota
	// ValidateStrict requires every next hop to strictly decrease the
	// distance to the destination: NextDist == Dist−1 in the serving
	// snapshot. Sound exactly for stretch-1 schemes.
	ValidateStrict
	// ValidateProgress requires the next hop to exist and the destination to
	// remain reachable from it — the weakest check that still catches
	// black-holed lookups on stretch>1 schemes (hub, centers), whose next
	// hop may legitimately move sideways before turning toward the
	// destination.
	ValidateProgress
	// ValidateOff disables validation (pure throughput runs).
	ValidateOff
	// ValidateSpot verifies answers through a spotgrade.Grader: a seeded hash
	// sample of answers is checked against on-demand BFS ground truth
	// (reachability, neighbourship, stretch ≤ 3). The only sound mode for
	// tables-tier snapshots, whose Result distances are estimates; ValidateAuto
	// selects it automatically when the engine serves TierTables.
	ValidateSpot
)

// Config parameterises one load run.
type Config struct {
	// Workers is the closed-loop client count (default 4).
	Workers int
	// Lookups is the total lookup target across workers (default 100_000).
	// The run ends when the target is reached (or Duration expires first, if
	// set).
	Lookups uint64
	// Duration optionally caps the run's wall-clock time (0 = no cap).
	Duration time.Duration
	// BatchSize is the pairs per client batch (default 16).
	BatchSize int
	// Seed derives every worker's query stream.
	Seed int64
	// Validate selects answer checking (default ValidateAuto).
	Validate Validation
	// HotSwaps > 0 republishes the serving snapshot that many times during
	// the run (toggling one edge each time), exercising reads-during-swap:
	// validation stays sound because every Result is judged against the
	// snapshot that served it.
	HotSwaps int
	// SwapFn overrides how a hot swap is performed. RunTarget requires it for
	// swaps; Run falls back to toggling edge (1,2) on its server's engine
	// when unset. Swapping stops at the first error.
	SwapFn func() error
	// Spot supplies the grader for ValidateSpot. Run auto-constructs one over
	// its server's engine when nil; RunTarget (no engine access) requires it.
	Spot *spotgrade.Grader
}

func (c *Config) setDefaults() {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Lookups == 0 && c.Duration == 0 {
		c.Lookups = 100_000
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
}

// Report is one load run's outcome.
type Report struct {
	Scheme         string        `json:"scheme"`
	N              int           `json:"n"`
	Workers        int           `json:"workers"`
	Batch          int           `json:"batch"`
	Lookups        uint64        `json:"lookups"`
	Correct        uint64        `json:"correct"`
	Incorrect      uint64        `json:"incorrect"`
	Rejected       uint64        `json:"rejected"`
	Errored        uint64        `json:"errored"`
	Swaps          uint64        `json:"swaps"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	QPS            float64       `json:"qps"`
	P50ns          int64         `json:"p50_ns"`
	P99ns          int64         `json:"p99_ns"`
	MeanBatchPairs float64       `json:"mean_batch_pairs"`
	// Spot-grading figures (ValidateSpot runs only).
	SpotGraded           uint64 `json:"spot_graded,omitempty"`
	SpotViolations       uint64 `json:"spot_violations,omitempty"`
	SpotMaxStretchMilli  int64  `json:"spot_max_stretch_milli,omitempty"`
	SpotMeanStretchMilli int64  `json:"spot_mean_stretch_milli,omitempty"`
}

// String renders the headline figures.
func (r *Report) String() string {
	return fmt.Sprintf("loadgen %s n=%d: %d lookups in %v (%.0f qps, p50 %v, p99 %v; incorrect=%d rejected=%d errored=%d swaps=%d)",
		r.Scheme, r.N, r.Lookups, r.Elapsed.Round(time.Millisecond), r.QPS,
		time.Duration(r.P50ns), time.Duration(r.P99ns),
		r.Incorrect, r.Rejected, r.Errored, r.Swaps)
}

// ErrIncorrect reports validation failures in a run.
var ErrIncorrect = errors.New("loadgen: incorrect next hops served")

// Target abstracts what the closed loop drives: the in-process server, a
// JSON HTTP batch client, and the binary wire client all satisfy it, so the
// same seeded workload compares transports on equal footing.
type Target interface {
	LookupBatch(pairs [][2]int, out []serve.Result) error
}

// TargetMeta describes a remote target: RunTarget cannot reach an Engine, so
// the caller supplies the serving scheme (for validation-mode selection) and
// node count (for the query mix).
type TargetMeta struct {
	Scheme string
	N      int
}

// coreStats is what the shared closed loop measures; Run and RunTarget dress
// it into a Report from their respective vantage points.
type coreStats struct {
	answered  uint64
	correct   uint64
	incorrect uint64
	rejected  uint64
	errored   uint64
	swaps     uint64 // successful swap invocations
	batches   uint64
	elapsed   time.Duration
	batchNs   *metrics.Histogram // client-side per-batch round-trip
}

// runCore is the closed loop itself: seeded workers issuing batches
// back-to-back against lookup, an optional progress-paced swapper, and
// client-side round-trip timing.
func runCore(lookup func([][2]int, []serve.Result) error, n int, mode Validation, swap func() error, spot *spotgrade.Grader, cfg Config) *coreStats {
	var (
		issued    atomic.Uint64 // lookups claimed by workers
		answered  atomic.Uint64
		correct   atomic.Uint64
		incorrect atomic.Uint64
		rejected  atomic.Uint64
		errored   atomic.Uint64
		swaps     atomic.Uint64
		batches   atomic.Uint64
	)
	batchNs := metrics.NewHistogram(metrics.ExponentialBounds(256, 24))
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	// Optional hot swapper. Swaps are paced by lookup progress (evenly
	// spread across the target) so they land mid-load even when the run
	// finishes in milliseconds; duration-capped runs fall back to wall-clock
	// spacing. Once workers halt, any remaining swaps fire back-to-back so
	// the configured count always completes.
	var swapWG sync.WaitGroup
	if cfg.HotSwaps > 0 && swap != nil {
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			waitProgress := func(threshold uint64) {
				for answered.Load() < threshold {
					select {
					case <-stop:
						return
					case <-time.After(50 * time.Microsecond):
					}
				}
			}
			for i := 0; i < cfg.HotSwaps; i++ {
				if cfg.Lookups > 0 {
					waitProgress(cfg.Lookups * uint64(i+1) / uint64(cfg.HotSwaps+1))
				} else {
					select {
					case <-stop:
					case <-time.After(time.Millisecond):
					}
				}
				if err := swap(); err != nil {
					return // e.g. mutation would break the scheme; keep serving
				}
				swaps.Add(1)
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)*7919))
			pairs := make([][2]int, cfg.BatchSize)
			out := make([]serve.Result, cfg.BatchSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					halt()
					return
				}
				if cfg.Lookups > 0 && issued.Add(uint64(cfg.BatchSize)) > cfg.Lookups {
					halt()
					return
				}
				for i := range pairs {
					src := rng.Intn(n) + 1
					dst := rng.Intn(n-1) + 1
					if dst >= src {
						dst++
					}
					pairs[i] = [2]int{src, dst}
				}
				t0 := time.Now()
				if err := lookup(pairs, out); err != nil {
					halt()
					return
				}
				batchNs.Observe(time.Since(t0).Nanoseconds())
				batches.Add(1)
				answered.Add(uint64(len(out)))
				for i := range out {
					grade(&out[i], mode, &correct, &incorrect, &rejected, &errored)
					if spot != nil {
						spot.Observe(pairs[i][0], pairs[i][1], &out[i])
					}
				}
			}
		}()
	}
	wg.Wait()
	halt()
	swapWG.Wait()
	return &coreStats{
		answered:  answered.Load(),
		correct:   correct.Load(),
		incorrect: incorrect.Load(),
		rejected:  rejected.Load(),
		errored:   errored.Load(),
		swaps:     swaps.Load(),
		batches:   batches.Load(),
		elapsed:   time.Since(start),
		batchNs:   batchNs,
	}
}

func resolveMode(cfg Config, scheme string) Validation {
	mode := cfg.Validate
	if mode == ValidateAuto {
		if serve.IsShortestPath(scheme) {
			mode = ValidateStrict
		} else {
			mode = ValidateProgress
		}
	}
	return mode
}

// Run drives the closed loop against s until the lookup target (or duration
// cap) is reached, validating every answer per cfg.Validate. The returned
// report is complete even when validation failed; the error flags it.
//
// Latency quantiles are read from the server's serve_latency_ns histogram
// and reflect the server's lifetime, so pass a freshly built server for
// per-run figures.
func Run(s *serve.Server, cfg Config) (*Report, error) {
	cfg.setDefaults()
	snap := s.Engine().Current()
	n := snap.N()
	if n < 2 {
		return nil, fmt.Errorf("loadgen: need at least 2 nodes, have %d", n)
	}
	mode := resolveMode(cfg, snap.SchemeName())
	if cfg.Validate == ValidateAuto && snap.Tier == serve.TierTables {
		// Tables-tier Result distances are estimates; only spot grading
		// against on-demand BFS ground truth is sound.
		mode = ValidateSpot
	}
	spot := cfg.Spot
	if mode == ValidateSpot && spot == nil {
		spot = spotgrade.New(s.Engine(), spotgrade.Config{Seed: cfg.Seed})
	}
	// Hot swaps toggle edge (1,2), each a full off-path rebuild + atomic
	// publish, exercising reads-during-swap; validation stays sound because
	// every Result is judged against the snapshot that served it.
	swap := cfg.SwapFn
	if swap == nil {
		swap = func() error {
			_, err := s.Engine().Mutate(func(g *graph.Graph) error {
				if g.HasEdge(1, 2) {
					return g.RemoveEdge(1, 2)
				}
				return g.AddEdge(1, 2)
			})
			return err
		}
	}
	st := runCore(s.LookupBatch, n, mode, swap, spot, cfg)

	lat := s.Metrics().Histogram("serve_latency_ns", nil)
	batch := s.Metrics().Histogram("serve_batch_pairs", nil)
	rep := &Report{
		Scheme:         snap.SchemeName(),
		N:              n,
		Workers:        cfg.Workers,
		Batch:          cfg.BatchSize,
		Lookups:        st.answered,
		Correct:        st.correct,
		Incorrect:      st.incorrect,
		Rejected:       st.rejected,
		Errored:        st.errored,
		Swaps:          s.Engine().Swaps(),
		Elapsed:        st.elapsed,
		P50ns:          lat.Quantile(0.50),
		P99ns:          lat.Quantile(0.99),
		MeanBatchPairs: batch.Mean(),
	}
	fillSpot(rep, spot)
	return finish(rep, st.elapsed)
}

// RunTarget drives the same closed loop against any Target — typically a
// JSON HTTP or binary wire client talking to a live listener. Latency
// quantiles are client-side whole-batch round-trips (transport included),
// which is the honest basis for comparing protocols; Swaps counts successful
// cfg.SwapFn invocations.
func RunTarget(tgt Target, meta TargetMeta, cfg Config) (*Report, error) {
	cfg.setDefaults()
	if meta.N < 2 {
		return nil, fmt.Errorf("loadgen: need at least 2 nodes, have %d", meta.N)
	}
	mode := resolveMode(cfg, meta.Scheme)
	if cfg.Validate == ValidateSpot || cfg.Spot != nil {
		if cfg.Spot == nil {
			return nil, fmt.Errorf("loadgen: ValidateSpot over a remote target requires cfg.Spot (no engine to grade against)")
		}
		mode = ValidateSpot
	}
	st := runCore(tgt.LookupBatch, meta.N, mode, cfg.SwapFn, cfg.Spot, cfg)
	rep := &Report{
		Scheme:    meta.Scheme,
		N:         meta.N,
		Workers:   cfg.Workers,
		Batch:     cfg.BatchSize,
		Lookups:   st.answered,
		Correct:   st.correct,
		Incorrect: st.incorrect,
		Rejected:  st.rejected,
		Errored:   st.errored,
		Swaps:     st.swaps,
		Elapsed:   st.elapsed,
		P50ns:     st.batchNs.Quantile(0.50),
		P99ns:     st.batchNs.Quantile(0.99),
	}
	if st.batches > 0 {
		rep.MeanBatchPairs = float64(st.answered) / float64(st.batches)
	}
	fillSpot(rep, cfg.Spot)
	return finish(rep, st.elapsed)
}

func fillSpot(rep *Report, spot *spotgrade.Grader) {
	if spot == nil {
		return
	}
	rep.SpotGraded = spot.Graded()
	rep.SpotViolations = spot.Violations()
	rep.SpotMaxStretchMilli = spot.MaxStretchMilli()
	rep.SpotMeanStretchMilli = spot.MeanStretchMilli()
}

func finish(rep *Report, elapsed time.Duration) (*Report, error) {
	if elapsed > 0 {
		rep.QPS = float64(rep.Lookups) / elapsed.Seconds()
	}
	if rep.Incorrect > 0 {
		return rep, fmt.Errorf("%w: %d of %d", ErrIncorrect, rep.Incorrect, rep.Lookups)
	}
	if rep.SpotViolations > 0 {
		return rep, fmt.Errorf("%w: %d spot-graded violation(s) in %d graded", ErrIncorrect, rep.SpotViolations, rep.SpotGraded)
	}
	return rep, nil
}

// grade judges one answer. Rejections and routing errors are tallied
// separately from incorrectness: shedding load is the server doing its job,
// serving a wrong next hop never is.
func grade(r *serve.Result, mode Validation, correct, incorrect, rejected, errored *atomic.Uint64) {
	switch {
	case errors.Is(r.Err, serve.ErrOverloaded):
		rejected.Add(1)
	case r.Err != nil:
		errored.Add(1)
	case mode == ValidateOff:
		correct.Add(1)
	case mode == ValidateStrict:
		if r.NextDist == r.Dist-1 {
			correct.Add(1)
		} else {
			incorrect.Add(1)
		}
	default: // ValidateProgress
		if r.Next >= 1 && r.NextDist >= 0 {
			correct.Add(1)
		} else {
			incorrect.Add(1)
		}
	}
}
