package loadgen

import (
	"math/rand"
	"testing"
	"time"

	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

func newServer(t *testing.T, n int, seed int64, scheme string) *serve.Server {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, scheme)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(eng, serve.ServerOptions{Shards: 4, QueueCap: 4096})
	t.Cleanup(s.Close)
	return s
}

// TestRunStrict: a fulltable run validates every answer, hits its lookup
// target exactly (target divisible by batch), and reports sane figures.
func TestRunStrict(t *testing.T) {
	s := newServer(t, 48, 41, "fulltable")
	rep, err := Run(s, Config{Workers: 4, Lookups: 8000, BatchSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lookups != 8000 {
		t.Fatalf("answered %d of 8000", rep.Lookups)
	}
	if rep.Correct != rep.Lookups || rep.Incorrect != 0 {
		t.Fatalf("correct=%d incorrect=%d of %d", rep.Correct, rep.Incorrect, rep.Lookups)
	}
	if rep.Rejected != 0 || rep.Errored != 0 {
		t.Fatalf("rejected=%d errored=%d", rep.Rejected, rep.Errored)
	}
	if rep.QPS <= 0 || rep.P50ns <= 0 || rep.P99ns < rep.P50ns {
		t.Fatalf("timing figures: %+v", rep)
	}
	if rep.Scheme != "fulltable" || rep.N != 48 {
		t.Fatalf("header: %+v", rep)
	}
}

// TestRunWithHotSwaps: validation stays clean across mid-load snapshot
// swaps, and the engine records them.
func TestRunWithHotSwaps(t *testing.T) {
	s := newServer(t, 48, 43, "fulltable")
	rep, err := Run(s, Config{Workers: 4, Lookups: 16000, BatchSize: 16, Seed: 2, HotSwaps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incorrect != 0 {
		t.Fatalf("%d incorrect answers across swaps", rep.Incorrect)
	}
	if rep.Swaps < 2 {
		t.Fatalf("swaps = %d, expected mid-load republishes", rep.Swaps)
	}
}

// TestRunProgressMode: stretch>1 schemes auto-select progress validation and
// pass it.
func TestRunProgressMode(t *testing.T) {
	s := newServer(t, 48, 47, "hub")
	rep, err := Run(s, Config{Workers: 2, Lookups: 2000, BatchSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incorrect != 0 || rep.Correct != rep.Lookups {
		t.Fatalf("hub progress validation: %+v", rep)
	}
}

// TestRunDurationCap: a duration-capped run terminates promptly even with a
// huge lookup target.
func TestRunDurationCap(t *testing.T) {
	s := newServer(t, 32, 53, "fulltable")
	start := time.Now()
	rep, err := Run(s, Config{Workers: 2, Lookups: 1 << 40, Duration: 100 * time.Millisecond, BatchSize: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lookups == 0 {
		t.Fatal("nothing answered in the window")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("duration cap did not take effect")
	}
}

// TestDeterministicMix: two runs with one worker and the same seed offer the
// identical query stream (same correctness tallies on the same server
// topology). QPS differs; the mix must not.
func TestDeterministicMix(t *testing.T) {
	a := newServer(t, 32, 59, "fulltable")
	b := newServer(t, 32, 59, "fulltable")
	repA, err := Run(a, Config{Workers: 1, Lookups: 1000, BatchSize: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(b, Config{Workers: 1, Lookups: 1000, BatchSize: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if repA.Lookups != repB.Lookups || repA.Correct != repB.Correct {
		t.Fatalf("same seed diverged: %+v vs %+v", repA, repB)
	}
}

// TestRunTarget: the Target-based loop must reproduce Run's semantics when
// pointed at the in-process server, including SwapFn-driven hot swaps and
// client-side latency figures.
func TestRunTarget(t *testing.T) {
	s := newServer(t, 48, 41, "fulltable")
	swaps := 0
	rep, err := RunTarget(s, TargetMeta{Scheme: "fulltable", N: 48}, Config{
		Workers: 2, Lookups: 4000, BatchSize: 16, Seed: 1, HotSwaps: 2,
		SwapFn: func() error {
			swaps++
			_, err := s.Engine().Reload()
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lookups != 4000 || rep.Correct != rep.Lookups {
		t.Fatalf("correct=%d of %d", rep.Correct, rep.Lookups)
	}
	if rep.Swaps != 2 || swaps != 2 {
		t.Fatalf("swaps = %d (fn called %d times)", rep.Swaps, swaps)
	}
	if rep.QPS <= 0 || rep.P50ns <= 0 || rep.P99ns < rep.P50ns {
		t.Fatalf("timing figures: %+v", rep)
	}
	if rep.MeanBatchPairs != 16 {
		t.Fatalf("mean batch pairs = %v", rep.MeanBatchPairs)
	}
}
