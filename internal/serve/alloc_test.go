package serve

import (
	"testing"
)

// skipIfRace skips allocation-count assertions under the race detector,
// whose instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
}

// TestSnapshotNextHopZeroAlloc pins the issue's headline contract: a snapshot
// lookup performs zero heap allocations. AllocsPerRun counts global mallocs,
// so anything the scheme, port table, or distance oracle allocated per call
// would show up here.
func TestSnapshotNextHopZeroAlloc(t *testing.T) {
	skipIfRace(t)
	eng, err := NewEngine(testGraph(t, 48, 11), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Current()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := snap.NextHop(1, 40); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Snapshot.NextHop allocates %.1f/op, want 0", allocs)
	}
}

// TestServerLookupBatchZeroAlloc asserts the whole batch serving path — shard
// grouping, pool submission, worker dispatch, answer, histograms — allocates
// nothing in steady state. AllocsPerRun's count includes the shard workers'
// goroutines, so a boxing or scratch regression anywhere in the pipeline
// fails this test. Stretch sampling is disabled: it full-routes a lookup and
// legitimately allocates a trace.
func TestServerLookupBatchZeroAlloc(t *testing.T) {
	skipIfRace(t)
	s := newTestServer(t, 48, 11, "fulltable", ServerOptions{
		Shards:             4,
		StretchSampleEvery: -1,
	})
	pairs := make([][2]int, 16)
	for i := range pairs {
		pairs[i] = [2]int{i%48 + 1, (i*7+19)%48 + 1}
		if pairs[i][0] == pairs[i][1] {
			pairs[i][1] = pairs[i][1]%48 + 1
		}
	}
	out := make([]Result, len(pairs))
	// Warm the scratch pool and the workers' batch buffers before measuring.
	for i := 0; i < 32; i++ {
		if err := s.LookupBatch(pairs, out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := s.LookupBatch(pairs, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupBatch allocates %.1f/op, want 0", allocs)
	}
}

// TestServerNextHopZeroAlloc covers the single-lookup convenience path, which
// shares the pooled scratch through its onePair/oneOut arrays.
func TestServerNextHopZeroAlloc(t *testing.T) {
	skipIfRace(t)
	s := newTestServer(t, 48, 11, "fulltable", ServerOptions{
		Shards:             2,
		StretchSampleEvery: -1,
	})
	for i := 0; i < 32; i++ {
		if res := s.NextHop(1, 40); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if res := s.NextHop(1, 40); res.Err != nil {
			t.Fatal(res.Err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Server.NextHop allocates %.1f/op, want 0", allocs)
	}
}
