// RTARENA1: the zero-copy snapshot codec. Where RTSNAP1 frames four separate
// sections a decoder must parse, copy, and re-materialise, the arena is one
// contiguous 8-byte-aligned buffer — a 96-byte header with an offsets table,
// then the adjacency bitset rows, the port tables, the packed uint8 distance
// matrix, and the scheme-name blob — guarded by a single CRC-32C over the
// whole body. Saving a snapshot is one contiguous write; loading is one
// ReadFile; adoption serves the O(n²) distance matrix *in place*, aliased by
// shortestpath.FromPacked rather than copied.
//
// Layout (all integers little-endian; every section starts on an 8-byte
// boundary; padding bytes are zero; see DESIGN.md §14 for the diagram):
//
//	off  0  magic "RTARENA1"                  (8 bytes)
//	off  8  u64 total arena length in bytes
//	off 16  u32 CRC-32C (Castagnoli) over buf[24:total]
//	off 20  u32 layout version (1)
//	off 24  u64 snapshot Seq
//	off 32  u32 n        off 36  u32 m        off 40  u32 words per adj row
//	off 44  (off,len) u32 pairs: adj, pidx, pdat, dist, scheme
//	off 84  12 reserved zero bytes
//	off 96  sections
//
// ADJ  is n rows × words u64: node u's adjacency bitset (bit v−1 ⇔ uv ∈ E).
// PIDX is n+1 u32 prefix sums of degree: node u's ports live at
//
//	PDAT[pidx[u-1] : pidx[u]]
//
// PDAT is 2m u32 neighbour labels in port order. DIST is the n² packed
// uint8 row-major distance matrix. SCHM is the scheme name.
//
// Determinism: EncodeArena is a pure function of the snapshot's logical
// content — two engines that published byte-identical tables encode
// byte-identical arenas, and the packed distance bytes (hence cluster.DistCRC)
// are bit-for-bit the bytes RTSNAP1's DIST section carries, which is the
// arena-vs-legacy contract the tests pin.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"routetab/internal/graph"
	"routetab/internal/shortestpath"
)

// Codec names, reported by Engine.Codec and the daemon's /healthz.
const (
	CodecArena  = "arena"
	CodecLegacy = "legacy"
)

// arenaMagic identifies arena layout version 1; bump arenaVersion (and the
// magic, for loud incompatibility) on any layout change.
var arenaMagic = [8]byte{'R', 'T', 'A', 'R', 'E', 'N', 'A', '1'}

// arena2Magic identifies layout version 2 — the tiered layout: identical
// header geometry, but the fourth section (the v1 DIST slot) carries the
// compact scheme's table blob (TBLS) instead of the n² packed matrix, with a
// free length. Full-matrix snapshots keep encoding as v1 byte-identically;
// sniffing dispatches on load.
var arena2Magic = [8]byte{'R', 'T', 'A', 'R', 'E', 'N', 'A', '2'}

const (
	arenaVersion   = 1
	arenaVersion2  = 2
	arenaHeaderLen = 96
	// maxArenaLen mirrors maxSectionLen: a corrupt length claim may not ask
	// the loader to allocate gigabytes.
	maxArenaLen = 256 << 20
)

// Header field offsets.
const (
	ahTotal   = 8
	ahCRC     = 16
	ahVersion = 20
	ahSeq     = 24
	ahN       = 32
	ahM       = 36
	ahWords   = 40
	ahAdj     = 44 // five (offset,len) u32 pairs follow: adj, pidx, pdat, dist, scheme
	ahPidx    = 52
	ahPdat    = 60
	ahDist    = 68
	ahSchm    = 76
)

func align8(x int) int { return (x + 7) &^ 7 }

// arenaLayoutLen returns the total arena size for the given shape, where
// distLen is the fourth section's byte length (n² packed distances on v1,
// the table blob on v2). Shared by the encoder and Snapshot.ArenaSize so the
// gauge never drifts from the bytes actually written.
func arenaLayoutLen(n, words, m, distLen, schmLen int) int {
	adjOff := arenaHeaderLen
	pidxOff := align8(adjOff + n*words*8)
	pdatOff := align8(pidxOff + (n+1)*4)
	distOff := align8(pdatOff + 2*m*4)
	schmOff := align8(distOff + distLen)
	return align8(schmOff + schmLen)
}

// Arena is a validated read-only view over one RTARENA1 buffer. All accessors
// alias the underlying buffer; nothing is materialised until SnapshotData is
// asked for, and even then the distance matrix stays aliased.
type Arena struct {
	buf     []byte
	version int
	seq     uint64
	n       int
	m       int
	words   int
	scheme  string
	adj     []byte // n*words*8 bytes
	pidx    []byte // (n+1)*4 bytes
	pdat    []byte // 2m*4 bytes
	dist    []byte // n*n bytes (v1 only)
	tbls    []byte // scheme table blob (v2 only)
}

// EncodeArena lays s out as one arena buffer — RTARENA1 when s carries the
// all-pairs matrix (byte-identical to the pre-tiered encoder), RTARENA2 when
// it carries compact-scheme tables instead (s.Dist == nil). The single
// allocation is the final buffer itself, sized exactly.
func EncodeArena(s *SnapshotData) []byte {
	n := s.Graph.N()
	words := s.Graph.Words()
	m := s.Graph.M()

	magic, version := arenaMagic, uint32(arenaVersion)
	adjOff := arenaHeaderLen
	adjLen := n * words * 8
	pidxOff := align8(adjOff + adjLen)
	pidxLen := (n + 1) * 4
	pdatOff := align8(pidxOff + pidxLen)
	pdatLen := 2 * m * 4
	distOff := align8(pdatOff + pdatLen)
	distLen := n * n
	if s.Dist == nil {
		magic, version = arena2Magic, arenaVersion2
		distLen = len(s.Tables)
	}
	schmOff := align8(distOff + distLen)
	schmLen := len(s.Scheme)
	total := align8(schmOff + schmLen)

	buf := make([]byte, total)
	copy(buf, magic[:])
	le := binary.LittleEndian
	le.PutUint64(buf[ahTotal:], uint64(total))
	le.PutUint32(buf[ahVersion:], version)
	le.PutUint64(buf[ahSeq:], s.Seq)
	le.PutUint32(buf[ahN:], uint32(n))
	le.PutUint32(buf[ahM:], uint32(m))
	le.PutUint32(buf[ahWords:], uint32(words))
	for _, f := range [5][3]int{
		{ahAdj, adjOff, adjLen}, {ahPidx, pidxOff, pidxLen}, {ahPdat, pdatOff, pdatLen},
		{ahDist, distOff, distLen}, {ahSchm, schmOff, schmLen},
	} {
		le.PutUint32(buf[f[0]:], uint32(f[1]))
		le.PutUint32(buf[f[0]+4:], uint32(f[2]))
	}

	for u := 1; u <= n; u++ {
		row := s.Graph.AdjRow(u)
		off := adjOff + (u-1)*words*8
		for w, word := range row {
			le.PutUint64(buf[off+w*8:], word)
		}
	}
	cum := uint32(0)
	le.PutUint32(buf[pidxOff:], 0)
	pd := pdatOff
	for u := 1; u <= n; u++ {
		row := s.Ports.NeighborsByPort(u)
		cum += uint32(len(row))
		le.PutUint32(buf[pidxOff+u*4:], cum)
		for _, v := range row {
			le.PutUint32(buf[pd:], uint32(v))
			pd += 4
		}
	}
	if s.Dist != nil {
		copy(buf[distOff:distOff+distLen], s.Dist.Packed())
	} else {
		copy(buf[distOff:distOff+distLen], s.Tables)
	}
	copy(buf[schmOff:], s.Scheme)

	le.PutUint32(buf[ahCRC:], crc32.Checksum(buf[ahSeq:], crcTable))
	return buf
}

// WriteArena encodes s as one arena and writes it with a single Write call —
// the contiguous-transfer form replica state shipping uses.
func WriteArena(w io.Writer, s *SnapshotData) error {
	_, err := w.Write(EncodeArena(s))
	return err
}

// OpenArena validates buf as one complete RTARENA1 buffer and returns the
// view. Every structural claim is checked — magic, version, total length,
// body CRC, section bounds, alignment, and size consistency — so arbitrary
// bytes get an error wrapping ErrBadSnapshotFile, never a corrupt view. The
// view aliases buf; the caller must not mutate it afterwards.
func OpenArena(buf []byte) (*Arena, error) {
	if len(buf) < arenaHeaderLen {
		return nil, fmt.Errorf("%w: arena of %d bytes", ErrBadSnapshotFile, len(buf))
	}
	le := binary.LittleEndian
	wantVersion := uint32(0)
	switch [8]byte(buf[:8]) {
	case arenaMagic:
		wantVersion = arenaVersion
	case arena2Magic:
		wantVersion = arenaVersion2
	default:
		return nil, fmt.Errorf("%w: arena magic %q", ErrBadSnapshotFile, buf[:8])
	}
	total := le.Uint64(buf[ahTotal:])
	if total != uint64(len(buf)) {
		return nil, fmt.Errorf("%w: arena claims %d bytes, have %d", ErrBadSnapshotFile, total, len(buf))
	}
	if v := le.Uint32(buf[ahVersion:]); v != wantVersion {
		return nil, fmt.Errorf("%w: arena layout version %d, magic wants %d", ErrBadSnapshotFile, v, wantVersion)
	}
	if got, want := crc32.Checksum(buf[ahSeq:], crcTable), le.Uint32(buf[ahCRC:]); got != want {
		return nil, fmt.Errorf("%w: arena checksum %08x, want %08x", ErrBadSnapshotFile, got, want)
	}
	n := int(le.Uint32(buf[ahN:]))
	m := int(le.Uint32(buf[ahM:]))
	words := int(le.Uint32(buf[ahWords:]))
	if n < 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadSnapshotFile, n)
	}
	if words != (n+63)/64 {
		return nil, fmt.Errorf("%w: %d adj words per row for n=%d", ErrBadSnapshotFile, words, n)
	}
	if m < 0 || m > n*(n-1)/2 {
		return nil, fmt.Errorf("%w: m = %d", ErrBadSnapshotFile, m)
	}
	section := func(at, wantLen int, name string) ([]byte, error) {
		off := int(le.Uint32(buf[at:]))
		length := int(le.Uint32(buf[at+4:]))
		if off < arenaHeaderLen || off%8 != 0 || length < 0 || off+length > len(buf) {
			return nil, fmt.Errorf("%w: %s section at %d+%d", ErrBadSnapshotFile, name, off, length)
		}
		if wantLen >= 0 && length != wantLen {
			return nil, fmt.Errorf("%w: %s section of %d bytes, want %d", ErrBadSnapshotFile, name, length, wantLen)
		}
		return buf[off : off+length], nil
	}
	a := &Arena{buf: buf, version: int(wantVersion), seq: le.Uint64(buf[ahSeq:]), n: n, m: m, words: words}
	var err error
	if a.adj, err = section(ahAdj, n*words*8, "ADJ"); err != nil {
		return nil, err
	}
	if a.pidx, err = section(ahPidx, (n+1)*4, "PIDX"); err != nil {
		return nil, err
	}
	if a.pdat, err = section(ahPdat, 2*m*4, "PDAT"); err != nil {
		return nil, err
	}
	if a.version == arenaVersion2 {
		// v2 reuses the DIST header slot for the scheme table blob, whose
		// length only the scheme codec knows — validated on decode.
		if a.tbls, err = section(ahDist, -1, "TBLS"); err != nil {
			return nil, err
		}
	} else if a.dist, err = section(ahDist, n*n, "DIST"); err != nil {
		return nil, err
	}
	var schm []byte
	if schm, err = section(ahSchm, -1, "SCHM"); err != nil {
		return nil, err
	}
	a.scheme = string(schm)
	if !KnownScheme(a.scheme) {
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadSnapshotFile, a.scheme)
	}
	if a.version == arenaVersion2 && !TableCapable(a.scheme) {
		return nil, fmt.Errorf("%w: scheme %q cannot serve the tables tier", ErrBadSnapshotFile, a.scheme)
	}
	if le.Uint32(a.pidx) != 0 {
		return nil, fmt.Errorf("%w: PIDX[0] = %d", ErrBadSnapshotFile, le.Uint32(a.pidx))
	}
	for u := 1; u <= n; u++ {
		if le.Uint32(a.pidx[u*4:]) < le.Uint32(a.pidx[(u-1)*4:]) {
			return nil, fmt.Errorf("%w: PIDX not monotone at node %d", ErrBadSnapshotFile, u)
		}
	}
	if got := int(le.Uint32(a.pidx[n*4:])); got != 2*m {
		return nil, fmt.Errorf("%w: PIDX total %d ports, header says %d", ErrBadSnapshotFile, got, 2*m)
	}
	return a, nil
}

// Seq returns the snapshot publication sequence.
func (a *Arena) Seq() uint64 { return a.seq }

// N returns the node count.
func (a *Arena) N() int { return a.n }

// M returns the edge count.
func (a *Arena) M() int { return a.m }

// Scheme returns the construction name.
func (a *Arena) Scheme() string { return a.scheme }

// Len returns the total arena size in bytes.
func (a *Arena) Len() int { return len(a.buf) }

// Bytes returns the whole arena buffer (read-only) — the contiguous form a
// transfer path writes with one call.
func (a *Arena) Bytes() []byte { return a.buf }

// Version returns the arena layout version (1 = full matrix, 2 = tiered).
func (a *Arena) Version() int { return a.version }

// PackedDist returns the n² packed distance bytes, aliasing the arena — the
// zero-copy payload, byte-identical to the legacy DIST section. Nil on v2
// arenas, which carry Tables instead.
func (a *Arena) PackedDist() []byte { return a.dist }

// Tables returns the scheme table blob of a v2 arena (nil on v1), aliasing
// the arena buffer.
func (a *Arena) Tables() []byte { return a.tbls }

// DistCRC returns CRC-32C over the packed distance bytes: the same
// convergence fingerprint cluster.DistCRC computes from a live snapshot.
func (a *Arena) DistCRC() uint32 { return crc32.Checksum(a.dist, crcTable) }

// SnapshotData materialises the decoded form. The graph and port tables are
// rebuilt (with full structural validation — symmetry, degree and bijection
// checks); the distance matrix is *adopted in place*, still aliasing the
// arena buffer, so the O(n²) payload is never copied.
func (a *Arena) SnapshotData() (*SnapshotData, error) {
	le := binary.LittleEndian
	rows := make([]uint64, a.n*a.words)
	for i := range rows {
		rows[i] = le.Uint64(a.adj[i*8:])
	}
	g, err := graph.FromAdjWords(a.n, rows)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}
	if g.M() != a.m {
		return nil, fmt.Errorf("%w: %d edges decoded, header says %d", ErrBadSnapshotFile, g.M(), a.m)
	}
	perms := make([][]int, a.n+1)
	for u := 1; u <= a.n; u++ {
		lo := int(le.Uint32(a.pidx[(u-1)*4:]))
		hi := int(le.Uint32(a.pidx[u*4:]))
		if hi-lo != g.Degree(u) {
			return nil, fmt.Errorf("%w: PIDX degree %d of node %d, graph says %d", ErrBadSnapshotFile, hi-lo, u, g.Degree(u))
		}
		sorted := g.Neighbors(u)
		index := make(map[int]int, len(sorted))
		for i, v := range sorted {
			index[v] = i
		}
		perm := make([]int, hi-lo)
		for i := range perm {
			v := int(le.Uint32(a.pdat[(lo+i)*4:]))
			idx, adj := index[v]
			if !adj {
				return nil, fmt.Errorf("%w: PDAT of node %d lists non-neighbour %d", ErrBadSnapshotFile, u, v)
			}
			perm[i] = idx
		}
		perms[u] = perm
	}
	ports, err := graph.PermutedPorts(g, perms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}
	if a.version == arenaVersion2 {
		// Tiered arena: no matrix to adopt; the table blob stays aliased to
		// the arena buffer and is validated by the scheme codec on decode.
		return &SnapshotData{Seq: a.seq, Scheme: a.scheme, Graph: g, Ports: ports, Tables: a.tbls}, nil
	}
	dm, err := shortestpath.FromPacked(a.n, a.dist)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshotFile, err)
	}
	return &SnapshotData{Seq: a.seq, Scheme: a.scheme, Graph: g, Ports: ports, Dist: dm}, nil
}

// readArena reads the remainder of one arena from r after the 8-byte magic
// (passed in, since both layouts stream through here) has already been
// consumed — the stream-decode path (cluster state bodies). The whole arena
// lands in one allocation and one ReadFull.
func readArena(r io.Reader, magic [8]byte) (*Arena, error) {
	var rest [8]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return nil, fmt.Errorf("%w: arena length: %v", ErrBadSnapshotFile, err)
	}
	total := binary.LittleEndian.Uint64(rest[:])
	if total < arenaHeaderLen || total > maxArenaLen {
		return nil, fmt.Errorf("%w: arena claims %d bytes", ErrBadSnapshotFile, total)
	}
	buf := make([]byte, total)
	copy(buf, magic[:])
	copy(buf[8:], rest[:])
	if _, err := io.ReadFull(r, buf[16:]); err != nil {
		return nil, fmt.Errorf("%w: arena body: %v", ErrBadSnapshotFile, err)
	}
	return OpenArena(buf)
}
