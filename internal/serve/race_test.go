//go:build race

package serve

// raceEnabled gates the AllocsPerRun assertions: race instrumentation adds
// its own allocations, so the zero-alloc contract is only measurable in
// plain builds.
const raceEnabled = true
