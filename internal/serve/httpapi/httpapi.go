// Package httpapi holds the JSON lookup API shared by routetabd, the
// benchmark harness, and the chaos suite: the wire shape of one lookup, the
// pooled POST /batch handler, and a client that maps answers back onto typed
// serve errors. Keeping encode and decode in one package pins the two sides
// to the same contract.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"routetab/internal/serve"
)

// LookupJSON is one lookup's JSON form. Degraded marks a failure-overlay
// detour (bounded within +2 hops of the snapshot distance); RetryAfterMs
// carries the shed hint for 429s at millisecond resolution, alongside the
// coarser integral-seconds Retry-After header.
type LookupJSON struct {
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	Next         int     `json:"next,omitempty"`
	Dist         int     `json:"dist"`
	NextDist     int     `json:"next_dist"`
	Seq          uint64  `json:"snapshot_seq"`
	Degraded     bool    `json:"degraded,omitempty"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// ToJSON converts one answered lookup.
func ToJSON(src, dst int, res serve.Result) LookupJSON {
	l := LookupJSON{Src: src, Dst: dst, Next: res.Next, Dist: res.Dist,
		NextDist: res.NextDist, Seq: res.Seq, Degraded: res.Degraded}
	if res.Err != nil {
		l.Error = res.Err.Error()
	}
	var oe *serve.OverloadedError
	if errors.As(res.Err, &oe) {
		l.RetryAfterMs = float64(oe.RetryAfter.Microseconds()) / 1000
	}
	return l
}

// Result maps a LookupJSON back onto a serve.Result with its errors.Is
// identity restored, so graders and routers treat HTTP answers exactly like
// in-process ones.
func (l LookupJSON) Result() serve.Result {
	res := serve.Result{Next: l.Next, Dist: l.Dist, NextDist: l.NextDist,
		Seq: l.Seq, Degraded: l.Degraded}
	if l.Error != "" {
		res.Next, res.Dist, res.NextDist = 0, 0, 0
		res.Err = decodeError(l.Error, l.RetryAfterMs)
	}
	return res
}

// decodeError recovers the typed error from its rendered string — the JSON
// protocol predates structured error codes, so identity rides on the
// sentinel messages, which are all distinct prefixes.
func decodeError(msg string, retryMs float64) error {
	switch {
	// Both the sentinel ("server overloaded, lookup rejected") and the
	// structured form ("shard N overloaded, retry after …") say so; a
	// retry-after hint is overload by definition.
	case retryMs > 0, strings.Contains(msg, "overloaded"):
		return &serve.OverloadedError{
			RetryAfter: time.Duration(retryMs * float64(time.Millisecond)),
		}
	case strings.Contains(msg, serve.ErrUnavailable.Error()):
		return serve.ErrUnavailable
	case strings.Contains(msg, serve.ErrSelfLookup.Error()):
		return serve.ErrSelfLookup
	case strings.Contains(msg, serve.ErrClosed.Error()):
		return serve.ErrClosed
	case strings.Contains(msg, serve.ErrPanicked.Error()):
		return serve.ErrPanicked
	default:
		return errors.New(msg)
	}
}

// StatusOf maps a lookup answer to its HTTP status.
func StatusOf(res serve.Result) int {
	switch {
	case res.Err == nil:
		return http.StatusOK
	case errors.Is(res.Err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(res.Err, serve.ErrUnavailable), errors.Is(res.Err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// SetRetryAfter adds the standard Retry-After header (integral seconds,
// rounded up — the hint is sub-second, the header cannot be) on responses
// that reject with backpressure.
func SetRetryAfter(w http.ResponseWriter, res serve.Result) {
	var oe *serve.OverloadedError
	switch {
	case errors.As(res.Err, &oe):
		secs := int64(oe.RetryAfter+time.Second-1) / int64(time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	case errors.Is(res.Err, serve.ErrOverloaded), errors.Is(res.Err, serve.ErrClosed):
		w.Header().Set("Retry-After", "1")
	}
}

// MaxBatch bounds one POST /batch request.
const MaxBatch = 65536

// batchRequest is the POST /batch body.
type batchRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// batchResponse is its reply.
type batchResponse struct {
	Results []LookupJSON `json:"results"`
}

// batchScratch is one request's pooled state: the decoded pairs, the lookup
// results, the JSON forms, and the response buffer all reuse prior requests'
// backing arrays, so a steady-state batch request costs decode/encode work
// but no per-request slice churn.
type batchScratch struct {
	req     batchRequest
	out     []serve.Result
	results []LookupJSON
	buf     bytes.Buffer
}

// batchHandler is the pooled POST /batch implementation.
type batchHandler struct {
	srv  *serve.Server
	pool sync.Pool
}

// NewBatchHandler returns the POST /batch handler over srv, with pooled
// per-request buffers.
func NewBatchHandler(srv *serve.Server) http.Handler {
	h := &batchHandler{srv: srv}
	h.pool.New = func() any { return &batchScratch{} }
	return h
}

func (h *batchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	sc := h.pool.Get().(*batchScratch)
	defer h.pool.Put(sc)
	sc.req.Pairs = sc.req.Pairs[:0]
	if err := json.NewDecoder(r.Body).Decode(&sc.req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pairs := sc.req.Pairs
	if len(pairs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(pairs) > MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds %d", len(pairs), MaxBatch))
		return
	}
	if cap(sc.out) < len(pairs) {
		sc.out = make([]serve.Result, len(pairs))
		sc.results = make([]LookupJSON, len(pairs))
	}
	out, results := sc.out[:len(pairs)], sc.results[:len(pairs)]
	if err := h.srv.LookupBatch(pairs, out); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i, res := range out {
		results[i] = ToJSON(pairs[i][0], pairs[i][1], res)
	}
	sc.buf.Reset()
	enc := json.NewEncoder(&sc.buf)
	if err := enc.Encode(batchResponse{Results: results}); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(sc.buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// BatchClient drives a remote POST /batch endpoint and restores typed
// errors, mirroring the wire package's binary client for the JSON protocol.
type BatchClient struct {
	base string
	hc   *http.Client
	pool sync.Pool // *clientScratch
}

type clientScratch struct {
	buf  bytes.Buffer
	resp batchResponse
}

// NewBatchClient builds a client for the server rooted at base
// (e.g. "http://127.0.0.1:7353"). hc nil means a dedicated client with
// keep-alive connections.
func NewBatchClient(base string, hc *http.Client) *BatchClient {
	if hc == nil {
		hc = &http.Client{}
	}
	c := &BatchClient{base: strings.TrimRight(base, "/"), hc: hc}
	c.pool.New = func() any { return &clientScratch{} }
	return c
}

// LookupBatch aliases Batch under the loadgen.Target method name, so one
// seeded workload can drive in-process, JSON, and binary targets alike.
func (c *BatchClient) LookupBatch(pairs [][2]int, out []serve.Result) error {
	return c.Batch(pairs, out)
}

// Batch answers len(pairs) lookups in one POST. Per-lookup failures land in
// out[i].Err; the returned error reports transport or protocol failures.
func (c *BatchClient) Batch(pairs [][2]int, out []serve.Result) error {
	if len(out) < len(pairs) {
		return fmt.Errorf("httpapi: out len %d < pairs len %d", len(out), len(pairs))
	}
	sc := c.pool.Get().(*clientScratch)
	defer c.pool.Put(sc)
	sc.buf.Reset()
	if err := json.NewEncoder(&sc.buf).Encode(batchRequest{Pairs: pairs}); err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/batch", "application/json", &sc.buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return fmt.Errorf("httpapi: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("httpapi: %s", resp.Status)
	}
	sc.resp.Results = sc.resp.Results[:0]
	if err := json.NewDecoder(resp.Body).Decode(&sc.resp); err != nil {
		return err
	}
	if len(sc.resp.Results) != len(pairs) {
		return fmt.Errorf("httpapi: %d results for %d pairs", len(sc.resp.Results), len(pairs))
	}
	for i, l := range sc.resp.Results {
		out[i] = l.Result()
	}
	return nil
}
