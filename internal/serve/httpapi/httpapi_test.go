package httpapi

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

func newTestServer(t *testing.T, n int, seed int64) *serve.Server {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2, StretchSampleEvery: -1})
	t.Cleanup(srv.Close)
	return srv
}

// TestBatchRoundTrip: handler and client agree — answers over HTTP match
// the in-process ones, across repeated (pool-reusing) requests.
func TestBatchRoundTrip(t *testing.T) {
	srv := newTestServer(t, 32, 3)
	ts := httptest.NewServer(NewBatchHandler(srv))
	defer ts.Close()
	c := NewBatchClient(ts.URL, nil)

	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		pairs := make([][2]int, 32)
		for i := range pairs {
			src := rng.Intn(32) + 1
			dst := rng.Intn(32) + 1
			if dst == src {
				dst = src%32 + 1
			}
			pairs[i] = [2]int{src, dst}
		}
		want := make([]serve.Result, len(pairs))
		if err := srv.LookupBatch(pairs, want); err != nil {
			t.Fatal(err)
		}
		got := make([]serve.Result, len(pairs))
		if err := c.Batch(pairs, got); err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if got[i] != want[i] {
				t.Fatalf("iter %d pair %v: http %+v, in-process %+v", iter, pairs[i], got[i], want[i])
			}
		}
	}
}

// TestErrorIdentityRoundTrip: typed errors must survive JSON — the grader
// and router treat remote answers by errors.Is identity.
func TestErrorIdentityRoundTrip(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{&serve.OverloadedError{Shard: 1, RetryAfter: 3 * time.Millisecond}, serve.ErrOverloaded},
		{serve.ErrUnavailable, serve.ErrUnavailable},
		{serve.ErrSelfLookup, serve.ErrSelfLookup},
		{serve.ErrClosed, serve.ErrClosed},
		{serve.ErrPanicked, serve.ErrPanicked},
	}
	for _, tc := range cases {
		l := ToJSON(1, 2, serve.Result{Seq: 4, Err: tc.in})
		res := l.Result()
		if !errors.Is(res.Err, tc.want) {
			t.Fatalf("%v decoded to %v", tc.in, res.Err)
		}
		if res.Seq != 4 {
			t.Fatalf("%v: seq lost", tc.in)
		}
	}
	var oe *serve.OverloadedError
	l := ToJSON(1, 2, serve.Result{Err: &serve.OverloadedError{RetryAfter: 2500 * time.Microsecond}})
	if !errors.As(l.Result().Err, &oe) || oe.RetryAfter != 2500*time.Microsecond {
		t.Fatalf("retry-after hint lost: %+v", l)
	}
}

// TestBatchRejections: shape errors are whole-request HTTP failures.
func TestBatchRejections(t *testing.T) {
	srv := newTestServer(t, 16, 2)
	ts := httptest.NewServer(NewBatchHandler(srv))
	defer ts.Close()
	c := NewBatchClient(ts.URL, nil)

	if err := c.Batch(nil, nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty batch: %v", err)
	}
	big := make([][2]int, MaxBatch+1)
	for i := range big {
		big[i] = [2]int{1, 2}
	}
	if err := c.Batch(big, make([]serve.Result, len(big))); err == nil {
		t.Fatal("oversize batch accepted")
	}
}

// TestServiceErrorInBatch: a self-lookup inside an otherwise healthy batch
// stays a per-record error with the batch succeeding.
func TestServiceErrorInBatch(t *testing.T) {
	srv := newTestServer(t, 16, 2)
	ts := httptest.NewServer(NewBatchHandler(srv))
	defer ts.Close()
	c := NewBatchClient(ts.URL, nil)

	pairs := [][2]int{{1, 5}, {3, 3}}
	out := make([]serve.Result, 2)
	if err := c.Batch(pairs, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil {
		t.Fatalf("healthy pair errored: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, serve.ErrSelfLookup) {
		t.Fatalf("self pair: %v", out[1].Err)
	}
}
