package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/par"
	"routetab/internal/serve/metrics"
	"routetab/internal/shortestpath"
)

// ServerOptions configures the lookup front end.
type ServerOptions struct {
	// Shards is the number of worker shards (default GOMAXPROCS). Lookups
	// for one source node always land on the same shard, so its rows of the
	// routing table stay hot in that worker's cache.
	Shards int
	// QueueCap bounds each shard's pending-job queue (default 1024). A full
	// queue rejects with ErrOverloaded — explicit backpressure.
	QueueCap int
	// MaxBatch bounds how many queued jobs one worker wake-up coalesces
	// (default 64): under load, snapshot acquisition and metric updates
	// amortise across the whole run.
	MaxBatch int
	// StretchSampleEvery full-routes every k-th lookup and records its
	// hops/distance ratio in the serve_stretch_x1000 histogram (default
	// 128; negative disables sampling). Sampling keeps the p99 budget: a
	// full route costs stretch× the table reads of a next-hop answer.
	StretchSampleEvery int
}

func (o *ServerOptions) setDefaults() {
	if o.Shards < 1 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap < 1 {
		o.QueueCap = 1024
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 64
	}
	if o.StretchSampleEvery == 0 {
		o.StretchSampleEvery = 128
	}
	if o.StretchSampleEvery < 0 {
		o.StretchSampleEvery = 0
	}
}

// Result is one lookup's answer, self-contained enough to validate: Next is
// the scheme's forwarding decision, Dist and NextDist are the serving
// snapshot's ground-truth distances src→dst and next→dst, and Seq names the
// snapshot that answered. For a shortest-path scheme NextDist == Dist−1 on
// every correct answer, whichever snapshot served it.
type Result struct {
	Next     int
	Dist     int
	NextDist int
	Seq      uint64
	Err      error
}

// job is the unit queued on a shard: a run of lookups sharing one reply
// array and one completion signal. idx selects this job's positions in the
// shared pairs/out arrays (nil = all of them).
type job struct {
	pairs [][2]int
	out   []Result
	idx   []int
	start time.Time
	wg    *sync.WaitGroup
}

func (j *job) len() int {
	if j.idx != nil {
		return len(j.idx)
	}
	return len(j.pairs)
}

func (j *job) pos(k int) int {
	if j.idx != nil {
		return j.idx[k]
	}
	return k
}

// Server is the sharded, batching query front end over an Engine. Submit
// with NextHop or LookupBatch; Close drains accepted work before returning.
type Server struct {
	eng  *Engine
	opts ServerOptions
	pool *par.Pool
	reg  *metrics.Registry

	lookups  *metrics.Counter // answered lookups (errors included)
	rejects  *metrics.Counter // lookups shed by backpressure
	errored  *metrics.Counter // lookups answered with a routing error
	batches  *metrics.Counter // worker wake-ups (coalesced runs)
	latency  *metrics.Histogram
	batchSz  *metrics.Histogram
	stretchH *metrics.Histogram
	sampleCt atomic.Uint64
	closed   atomic.Bool
}

// NewServer starts the shard workers over eng's snapshots.
func NewServer(eng *Engine, opts ServerOptions) *Server {
	opts.setDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		eng:      eng,
		opts:     opts,
		reg:      reg,
		lookups:  reg.Counter("serve_lookups_total"),
		rejects:  reg.Counter("serve_rejects_total"),
		errored:  reg.Counter("serve_errors_total"),
		batches:  reg.Counter("serve_batches_total"),
		latency:  reg.Histogram("serve_latency_ns", metrics.ExponentialBounds(1024, 24)), // ~1µs … ~8.6s
		batchSz:  reg.Histogram("serve_batch_pairs", metrics.ExponentialBounds(1, 14)),   // 1 … 8192
		stretchH: reg.Histogram("serve_stretch_x1000", []int64{1000, 1100, 1250, 1500, 2000, 3000, 5000, 10000}),
	}
	reg.GaugeFunc("serve_snapshot_seq", func() int64 { return int64(eng.Current().Seq) })
	reg.GaugeFunc("serve_swaps", func() int64 { return int64(eng.Swaps()) })
	s.pool = par.NewPool(opts.Shards, opts.QueueCap, opts.MaxBatch, s.runBatch)
	return s
}

// Engine returns the engine behind the server (for hot swaps).
func (s *Server) Engine() *Engine { return s.eng }

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Close stops accepting lookups and drains every accepted job.
func (s *Server) Close() {
	s.closed.Store(true)
	s.pool.Close()
}

// shardOf keys shard placement on the source node, so one node's table rows
// are only ever scanned by one worker.
func (s *Server) shardOf(src int) int {
	if src < 0 {
		src = -src
	}
	return src % s.opts.Shards
}

// NextHop answers a single lookup, blocking until served or rejected.
func (s *Server) NextHop(src, dst int) Result {
	var out [1]Result
	s.lookupInto([][2]int{{src, dst}}, out[:])
	return out[0]
}

// LookupBatch answers len(pairs) lookups into out (len(out) must equal
// len(pairs)). Pairs are split by source shard; each sub-run is queued,
// answered under one snapshot acquisition, and the call returns when every
// pair has an answer. Shed pairs get Err = ErrOverloaded; the call itself
// only errors on misuse.
func (s *Server) LookupBatch(pairs [][2]int, out []Result) error {
	if len(pairs) != len(out) {
		return fmt.Errorf("serve: LookupBatch pairs (%d) and out (%d) length mismatch", len(pairs), len(out))
	}
	if len(pairs) == 0 {
		return nil
	}
	s.lookupInto(pairs, out)
	return nil
}

// lookupInto groups pairs by shard, submits one job per shard, and waits.
func (s *Server) lookupInto(pairs [][2]int, out []Result) {
	start := time.Now()
	var wg sync.WaitGroup
	if s.opts.Shards == 1 || len(pairs) == 1 {
		s.submit(s.shardOf(pairs[0][0]), &job{pairs: pairs, out: out, start: start, wg: &wg})
		wg.Wait()
		return
	}
	byShard := make(map[int][]int, s.opts.Shards)
	for i, p := range pairs {
		sh := s.shardOf(p[0])
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idx := range byShard {
		s.submit(sh, &job{pairs: pairs, out: out, idx: idx, start: start, wg: &wg})
	}
	wg.Wait()
}

// submit queues j on shard or, on backpressure, fails its pairs in place.
func (s *Server) submit(shard int, j *job) {
	j.wg.Add(1)
	if !s.closed.Load() && s.pool.TrySubmit(shard, j) {
		return
	}
	// Shed: answer every pair right here — the caller always gets a
	// definite answer per pair, never a silent drop.
	failure := ErrOverloaded
	if s.closed.Load() {
		failure = ErrClosed
	}
	n := j.len()
	for k := 0; k < n; k++ {
		j.out[j.pos(k)] = Result{Err: failure}
	}
	s.rejects.Add(uint64(n))
	j.wg.Done()
}

// runBatch is the shard worker handler: one snapshot acquisition answers the
// whole coalesced run.
func (s *Server) runBatch(_ int, batch []any) {
	snap := s.eng.Current()
	total := 0
	for _, it := range batch {
		j := it.(*job)
		n := j.len()
		total += n
		for k := 0; k < n; k++ {
			p := j.pairs[j.pos(k)]
			j.out[j.pos(k)] = s.answer(snap, p[0], p[1])
		}
		s.latency.Observe(time.Since(j.start).Nanoseconds())
		j.wg.Done()
	}
	s.batches.Inc()
	s.batchSz.Observe(int64(total))
	s.lookups.Add(uint64(total))
}

// answer resolves one lookup against one snapshot.
func (s *Server) answer(snap *Snapshot, src, dst int) Result {
	next, err := snap.NextHop(src, dst)
	if err != nil {
		s.errored.Inc()
		return Result{Seq: snap.Seq, Err: err}
	}
	res := Result{
		Next:     next,
		Dist:     snap.Dist.Dist(src, dst),
		NextDist: snap.Dist.Dist(next, dst),
		Seq:      snap.Seq,
	}
	if k := s.opts.StretchSampleEvery; k > 0 && s.sampleCt.Add(1)%uint64(k) == 0 {
		s.sampleStretch(snap, src, dst, res.Dist)
	}
	return res
}

// sampleStretch full-routes one lookup and records hops/dist ×1000 — the
// same latency definition netsim's hop histogram uses: edge traversals of
// the delivered message, detours and walker revisits included.
func (s *Server) sampleStretch(snap *Snapshot, src, dst, dist int) {
	if dist <= 0 || dist == shortestpath.Unreachable {
		return
	}
	tr, err := snap.Route(src, dst)
	if err != nil {
		return
	}
	s.stretchH.Observe(int64(tr.Hops) * 1000 / int64(dist))
}
