package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/par"
	"routetab/internal/serve/metrics"
	"routetab/internal/shortestpath"
)

// ServerOptions configures the lookup front end.
type ServerOptions struct {
	// Shards is the number of worker shards (default GOMAXPROCS). Lookups
	// for one source node always land on the same shard, so its rows of the
	// routing table stay hot in that worker's cache.
	Shards int
	// QueueCap bounds each shard's pending-job queue (default 1024). A full
	// queue rejects with ErrOverloaded — explicit backpressure.
	QueueCap int
	// MaxBatch bounds how many queued jobs one worker wake-up coalesces
	// (default 64): under load, snapshot acquisition and metric updates
	// amortise across the whole run.
	MaxBatch int
	// StretchSampleEvery full-routes every k-th lookup and records its
	// hops/distance ratio in the serve_stretch_x1000 histogram (default
	// 128; negative disables sampling). Sampling keeps the p99 budget: a
	// full route costs stretch× the table reads of a next-hop answer.
	StretchSampleEvery int
	// BreakerThreshold is how many consecutive failed submissions trip a
	// shard's circuit breaker open (default 16; negative disables the
	// breaker). While open, that shard's lookups shed to sibling shards —
	// a stalled worker degrades throughput instead of cliffing it.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before the
	// next submission probes the shard again (default 5ms).
	BreakerCooldown time.Duration
	// ChaosHook, when set, runs at the start of every worker batch — the
	// chaos harness's injection point. The hook may sleep (emulating a
	// stalled shard) and may return true to drop the whole batch: its jobs
	// fail with *OverloadedError (a definite per-pair answer, graded as a
	// shed, never a silent drop). Production servers leave it nil.
	ChaosHook func(shard int) (drop bool)
}

func (o *ServerOptions) setDefaults() {
	if o.Shards < 1 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap < 1 {
		o.QueueCap = 1024
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = 64
	}
	if o.StretchSampleEvery == 0 {
		o.StretchSampleEvery = 128
	}
	if o.StretchSampleEvery < 0 {
		o.StretchSampleEvery = 0
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 16
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Millisecond
	}
}

// Result is one lookup's answer, self-contained enough to validate: Next is
// the scheme's forwarding decision, Dist and NextDist are the serving
// snapshot's ground-truth distances src→dst and next→dst, and Seq names the
// snapshot that answered. For a shortest-path scheme NextDist == Dist−1 on
// every correct answer, whichever snapshot served it — unless Degraded is
// set, in which case the scheme's hop was poisoned by a failure overlay and
// Next is a live detour bounded by 1+NextDist ≤ Dist+2 (valid on the paper's
// diameter-2 graphs, where any live neighbour is ≤ 2 hops from anywhere).
type Result struct {
	Next     int
	Dist     int
	NextDist int
	Seq      uint64
	Degraded bool
	Err      error
}

// breaker is one shard's circuit breaker: consecutive submission failures
// trip it open until a cooldown deadline. The first submission at or past the
// deadline wins the probing flag and becomes the half-open probe — exactly
// one probe is ever in flight, concurrent submitters keep shedding sideways
// until it resolves. Probe success closes the breaker; probe failure re-arms
// the cooldown.
type breaker struct {
	fails     atomic.Int32
	openUntil atomic.Int64 // unix nanos; 0 = closed
	probing   atomic.Bool  // a half-open probe is in flight
}

// Server is the sharded, batching query front end over an Engine. Submit
// with NextHop or LookupBatch; Close drains accepted work before returning.
type Server struct {
	eng  *Engine
	opts ServerOptions
	pool *par.Pool
	reg  *metrics.Registry

	// overlay is the failure view published by the Repairer: links and nodes
	// currently known down but possibly still present in the serving
	// snapshot's tables. nil (the steady state) costs the hot path one
	// atomic load.
	overlay atomic.Pointer[overlay]

	breakers  []breaker
	avgJobNs  atomic.Int64  // EWMA of per-job handler service time
	jitterCtr atomic.Uint64 // sequences retry-after jitter draws
	// scratch pools per-call lookup state (jobs, shard counters, index
	// buffer, WaitGroup) so the steady-state batch path allocates nothing;
	// see hot.go.
	scratch sync.Pool

	lookups     *metrics.Counter   // answered lookups (errors included)
	rejects     *metrics.Counter   // lookups shed by backpressure
	errored     *metrics.Counter   // lookups answered with a routing error
	degraded    *metrics.Counter   // lookups answered via a failure-overlay detour
	unavailable *metrics.Counter   // lookups with no live route even degraded
	batches     *metrics.Counter   // worker wake-ups (coalesced runs)
	trips       *metrics.Counter   // breaker trips (closed→open transitions)
	shunts      *metrics.Counter   // jobs redirected off an open-breaker shard
	panics      *metrics.Counter   // recovered worker panics
	wrongShard  *metrics.Counter   // lookups refused: source outside owned keyspace
	shardSheds  []*metrics.Counter // sheds attributed to each primary shard
	latency     *metrics.Histogram
	lookupNs    *metrics.Histogram // per-lookup service time (queue wait excluded)
	batchSz     *metrics.Histogram
	stretchH    *metrics.Histogram
	sampleCt    atomic.Uint64
	closed      atomic.Bool
}

// NewServer starts the shard workers over eng's snapshots.
func NewServer(eng *Engine, opts ServerOptions) *Server {
	opts.setDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		eng:         eng,
		opts:        opts,
		reg:         reg,
		breakers:    make([]breaker, opts.Shards),
		lookups:     reg.Counter("serve_lookups_total"),
		rejects:     reg.Counter("serve_rejects_total"),
		errored:     reg.Counter("serve_errors_total"),
		degraded:    reg.Counter("serve_degraded_total"),
		unavailable: reg.Counter("serve_unavailable_total"),
		batches:     reg.Counter("serve_batches_total"),
		trips:       reg.Counter("serve_breaker_trips_total"),
		shunts:      reg.Counter("serve_breaker_shunts_total"),
		panics:      reg.Counter("serve_worker_panics_total"),
		wrongShard:  reg.Counter("serve_wrong_shard_total"),
		latency:     reg.Histogram("serve_latency_ns", metrics.ExponentialBounds(1024, 24)), // ~1µs … ~8.6s
		lookupNs:    reg.Histogram("lookup_ns", metrics.ExponentialBounds(16, 24)),          // 16ns … ~134ms
		batchSz:     reg.Histogram("serve_batch_pairs", metrics.ExponentialBounds(1, 14)),   // 1 … 8192
		stretchH:    reg.Histogram("serve_stretch_x1000", []int64{1000, 1100, 1250, 1500, 2000, 3000, 5000, 10000}),
	}
	s.shardSheds = make([]*metrics.Counter, opts.Shards)
	for i := range s.shardSheds {
		s.shardSheds[i] = reg.Counter(fmt.Sprintf("serve_sheds_shard_%d", i))
	}
	reg.GaugeFunc("serve_snapshot_seq", func() int64 { return int64(eng.Current().Seq) })
	reg.GaugeFunc("serve_swaps", func() int64 { return int64(eng.Swaps()) })
	reg.GaugeFunc("serve_breakers_open", func() int64 {
		now := time.Now().UnixNano()
		open := int64(0)
		for i := range s.breakers {
			if u := s.breakers[i].openUntil.Load(); u != 0 && now < u {
				open++
			}
		}
		return open
	})
	s.scratch.New = func() any { return newLookupScratch(opts.Shards) }
	s.pool = par.NewPool(opts.Shards, opts.QueueCap, opts.MaxBatch, s.runBatch)
	return s
}

// Engine returns the engine behind the server (for hot swaps).
func (s *Server) Engine() *Engine { return s.eng }

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Close stops accepting lookups and drains every accepted job.
func (s *Server) Close() {
	s.closed.Store(true)
	s.pool.Close()
}

// shardOf keys shard placement on the source node, so one node's table rows
// are only ever scanned by one worker.
func (s *Server) shardOf(src int) int {
	if src < 0 {
		src = -src
	}
	return src % s.opts.Shards
}

// LookupBatch answers len(pairs) lookups into out (len(out) must equal
// len(pairs)). Pairs are split by source shard; each sub-run is queued,
// answered under one snapshot acquisition, and the call returns when every
// pair has an answer. Shed pairs get Err = ErrOverloaded; the call itself
// only errors on misuse.
func (s *Server) LookupBatch(pairs [][2]int, out []Result) error {
	if len(pairs) != len(out) {
		return fmt.Errorf("serve: LookupBatch pairs (%d) and out (%d) length mismatch", len(pairs), len(out))
	}
	if len(pairs) == 0 {
		return nil
	}
	s.lookupInto(pairs, out)
	return nil
}

// breakerOpen reports whether shard's breaker currently rejects submissions.
// At or past the cooldown deadline the caller that wins the probing flag is
// admitted as the single half-open probe; everyone else keeps seeing the
// breaker open until that probe resolves through noteSubmitOK/Fail.
func (s *Server) breakerOpen(shard int, now int64) bool {
	b := &s.breakers[shard]
	u := b.openUntil.Load()
	if u == 0 {
		return false
	}
	if now < u {
		return true
	}
	// Cooldown expired: admit exactly one probe.
	return !b.probing.CompareAndSwap(false, true)
}

// noteSubmitOK records a successful submission: consecutive-failure count
// resets and an open breaker (half-open probe succeeded) closes.
func (s *Server) noteSubmitOK(shard int) {
	b := &s.breakers[shard]
	b.fails.Store(0)
	if b.openUntil.Load() != 0 {
		b.openUntil.Store(0)
	}
	b.probing.Store(false)
}

// noteSubmitFail records a failed submission; consecutive failures reaching
// the threshold — or a failed half-open probe — trip the breaker open.
func (s *Server) noteSubmitFail(shard int, now int64) {
	if s.opts.BreakerThreshold < 0 {
		return
	}
	b := &s.breakers[shard]
	if b.probing.Load() {
		// The half-open probe failed: re-arm the cooldown, release the
		// probing flag last so no second probe slips in between.
		b.fails.Store(0)
		b.openUntil.Store(now + s.opts.BreakerCooldown.Nanoseconds())
		s.trips.Inc()
		b.probing.Store(false)
		return
	}
	if int(b.fails.Add(1)) >= s.opts.BreakerThreshold {
		b.fails.Store(0)
		b.openUntil.Store(now + s.opts.BreakerCooldown.Nanoseconds())
		s.trips.Inc()
	}
}

// submit queues j on its primary shard, falls back to sibling shards while
// the primary's breaker is open (or its queue full), and on total
// backpressure fails the job's pairs in place with a structured overload
// error carrying a retry-after hint.
func (s *Server) submit(shard int, j *job) {
	j.wg.Add(1)
	if !s.closed.Load() {
		now := time.Now().UnixNano()
		if !s.breakerOpen(shard, now) {
			if s.pool.TrySubmit(shard, j) {
				s.noteSubmitOK(shard)
				return
			}
			s.noteSubmitFail(shard, now)
		}
		// Primary unavailable (open breaker or full queue): shed sideways.
		// Sibling shards run independent workers, so a single stalled shard
		// degrades locality, not availability.
		for off := 1; off < s.opts.Shards; off++ {
			sib := (shard + off) % s.opts.Shards
			if s.breakerOpen(sib, now) {
				continue
			}
			if s.pool.TrySubmit(sib, j) {
				s.noteSubmitOK(sib)
				s.shunts.Inc()
				return
			}
			s.noteSubmitFail(sib, now)
		}
	}
	// Shed: answer every pair right here — the caller always gets a
	// definite answer per pair, never a silent drop.
	var failure error
	if s.closed.Load() {
		failure = ErrClosed
	} else {
		failure = &OverloadedError{Shard: shard, RetryAfter: s.retryAfterHint()}
	}
	s.failJob(j, shard, failure)
}

// failJob answers every pair of j with failure and releases its waiter.
func (s *Server) failJob(j *job, shard int, failure error) {
	n := j.len()
	for k := 0; k < n; k++ {
		j.out[j.pos(k)] = Result{Err: failure}
	}
	s.rejects.Add(uint64(n))
	s.shardSheds[shard].Add(uint64(n))
	j.wg.Done()
}

// Jitter band for retry-after hints: each shed's hint is scaled by a factor
// drawn uniformly from [retryJitterLoNum/retryJitterDen, retryJitterHiNum/
// retryJitterDen) — i.e. ×0.75 … ×1.25 — before clamping. Without it, every
// client shed by one circuit-breaker trip receives the same hint and the
// whole cohort retries in lockstep, re-overloading the shard at exactly the
// moment it reopens.
const (
	retryJitterLoNum = 768  // ×0.75
	retryJitterHiNum = 1280 // ×1.25 (exclusive)
	retryJitterDen   = 1024
)

// retryAfterHint estimates how long a full shard queue takes to drain:
// queue capacity × the EWMA per-job service time, de-synchronised by a
// per-call jitter draw, clamped to a sane band. A hint, not a promise — the
// point is that callers back off proportionally to observed service rate
// (and not all at once) instead of hammering a saturated shard.
func (s *Server) retryAfterHint() time.Duration {
	per := s.avgJobNs.Load()
	if per <= 0 {
		per = int64(10 * time.Microsecond)
	}
	d := time.Duration(per * int64(s.opts.QueueCap))
	// SplitMix64-style hash of a counter: cheap, lock-free, and distinct
	// across the synchronized clients of one trip (a shared rand.Rand would
	// serialise the shed path on its mutex).
	x := s.jitterCtr.Add(1) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	frac := retryJitterLoNum + int64(x%(retryJitterHiNum-retryJitterLoNum))
	d = d * time.Duration(frac) / retryJitterDen
	const lo, hi = 100 * time.Microsecond, 50 * time.Millisecond
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

// sampleStretch full-routes one lookup and records hops/dist ×1000 — the
// same latency definition netsim's hop histogram uses: edge traversals of
// the delivered message, detours and walker revisits included.
func (s *Server) sampleStretch(snap *Snapshot, src, dst, dist int) {
	if dist <= 0 || dist == shortestpath.Unreachable {
		return
	}
	tr, err := snap.Route(src, dst)
	if err != nil {
		return
	}
	s.stretchH.Observe(int64(tr.Hops) * 1000 / int64(dist))
}
