// The serving hot loop: everything between a LookupBatch call and the per-pair
// Result writes lives here, structured so the steady state allocates nothing.
// The rules this file plays by:
//
//   - no maps: the legacy per-call map[int][]int shard grouping is replaced by
//     a counting sort over a pooled int32 index buffer;
//   - no per-call heap state: jobs, shard counters, the index buffer, and the
//     completion WaitGroup all live in one pooled lookupScratch, recycled via
//     sync.Pool once the call's last job has signalled;
//   - no interface{} boxing per lookup: jobs enter the worker pool as *job
//     pointers (pointer-shaped, box-free), and Snapshot.NextHop reaches the
//     scheme through routing.Sim's pre-boxed per-node Env values.
//
// alloc_test.go pins the contract with testing.AllocsPerRun: 0 allocs/op for
// Snapshot.NextHop and for the whole server batch path.
//
//rt:hotpath — make lint bans fmt.Sprintf and map iteration in this file.
package serve

import (
	"fmt"
	"sync"
	"time"

	"routetab/internal/shortestpath"
)

// job is the unit queued on a shard: a run of lookups sharing one reply
// array and one completion signal. idx selects this job's positions in the
// shared pairs/out arrays (nil = all of them). Jobs live inside a pooled
// lookupScratch, never on the heap per call.
type job struct {
	pairs [][2]int
	out   []Result
	idx   []int32
	start time.Time
	wg    *sync.WaitGroup
}

func (j *job) len() int {
	if j.idx != nil {
		return len(j.idx)
	}
	return len(j.pairs)
}

func (j *job) pos(k int) int {
	if j.idx != nil {
		return int(j.idx[k])
	}
	return k
}

// lookupScratch is one call's preallocated state. jobs is indexed by shard
// (a call submits at most one job per shard); counts doubles as the
// counting-sort cursor; idx grows to the largest batch seen and sticks.
type lookupScratch struct {
	wg      sync.WaitGroup
	jobs    []job
	counts  []int32
	starts  []int32
	idx     []int32
	onePair [1][2]int
	oneOut  [1]Result
}

func newLookupScratch(shards int) *lookupScratch {
	return &lookupScratch{
		jobs:   make([]job, shards),
		counts: make([]int32, shards),
		starts: make([]int32, shards),
	}
}

// release clears job slots (so pooled scratch does not pin caller buffers)
// and returns the scratch to the pool.
func (s *Server) release(sc *lookupScratch) {
	for i := range sc.jobs {
		sc.jobs[i] = job{}
	}
	s.scratch.Put(sc)
}

// NextHop answers a single lookup, blocking until served or rejected.
func (s *Server) NextHop(src, dst int) Result {
	sc := s.scratch.Get().(*lookupScratch)
	sc.onePair[0] = [2]int{src, dst}
	j := &sc.jobs[0]
	*j = job{pairs: sc.onePair[:], out: sc.oneOut[:], start: time.Now(), wg: &sc.wg}
	s.submit(s.shardOf(src), j)
	sc.wg.Wait()
	res := sc.oneOut[0]
	s.release(sc)
	return res
}

// lookupInto groups pairs by shard with a counting sort over pooled scratch,
// submits one job per non-empty shard, and waits for the last to finish.
func (s *Server) lookupInto(pairs [][2]int, out []Result) {
	start := time.Now()
	sc := s.scratch.Get().(*lookupScratch)
	if s.opts.Shards == 1 || len(pairs) == 1 {
		j := &sc.jobs[0]
		*j = job{pairs: pairs, out: out, start: start, wg: &sc.wg}
		s.submit(s.shardOf(pairs[0][0]), j)
		sc.wg.Wait()
		s.release(sc)
		return
	}
	shards := s.opts.Shards
	counts := sc.counts[:shards]
	for i := range counts {
		counts[i] = 0
	}
	for _, p := range pairs {
		counts[s.shardOf(p[0])]++
	}
	if cap(sc.idx) < len(pairs) {
		sc.idx = make([]int32, len(pairs))
	}
	idx := sc.idx[:len(pairs)]
	starts := sc.starts[:shards]
	sum := int32(0)
	for sh := range starts {
		starts[sh] = sum
		sum += counts[sh]
	}
	for i, p := range pairs {
		sh := s.shardOf(p[0])
		idx[starts[sh]] = int32(i)
		starts[sh]++
	}
	// starts[sh] is now the end of shard sh's run (and starts[sh-1] its
	// beginning): submit one job per non-empty shard, preserving the caller's
	// pair order within each run.
	lo := int32(0)
	for sh := 0; sh < shards; sh++ {
		hi := starts[sh]
		if hi == lo {
			continue
		}
		j := &sc.jobs[sh]
		*j = job{pairs: pairs, out: out, idx: idx[lo:hi], start: start, wg: &sc.wg}
		s.submit(sh, j)
		lo = hi
	}
	sc.wg.Wait()
	s.release(sc)
}

// runBatch is the shard worker handler: one snapshot acquisition answers the
// whole coalesced run. A panic anywhere in the batch (scheme code, chaos
// hook) fails the remaining jobs with ErrPanicked instead of deadlocking
// their waiters; the pool's own recovery then keeps the worker alive.
func (s *Server) runBatch(shard int, batch []any) {
	done := 0
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			err := fmt.Errorf("%w: %v", ErrPanicked, r)
			for _, it := range batch[done:] {
				j := it.(*job)
				n := j.len()
				for k := 0; k < n; k++ {
					j.out[j.pos(k)] = Result{Err: err}
				}
				s.errored.Add(uint64(n))
				j.wg.Done()
			}
		}
	}()
	if h := s.opts.ChaosHook; h != nil && h(shard) {
		// Injected batch drop: every job still gets a definite shed answer.
		done = len(batch)
		for _, it := range batch {
			s.failJob(it.(*job), shard, &OverloadedError{Shard: shard, RetryAfter: s.retryAfterHint()})
		}
		return
	}
	svcStart := time.Now()
	snap := s.eng.Current()
	total := 0
	for _, it := range batch {
		j := it.(*job)
		done++
		total += s.runJob(snap, j)
	}
	if len(batch) > 0 {
		svc := time.Since(svcStart).Nanoseconds()
		// EWMA (⅞ old, ⅛ new) of per-job service time feeds retry-after
		// hints; racy read-modify-write is fine for a heuristic.
		cur := svc / int64(len(batch))
		old := s.avgJobNs.Load()
		if old == 0 {
			s.avgJobNs.Store(cur)
		} else {
			s.avgJobNs.Store(old - old/8 + cur/8)
		}
		if total > 0 {
			// Mean per-lookup service time, one observation per wake-up:
			// queue wait excluded, so regressions in the answer path itself
			// surface even under light load.
			s.lookupNs.Observe(svc / int64(total))
		}
	}
	s.batches.Inc()
	s.batchSz.Observe(int64(total))
	s.lookups.Add(uint64(total))
}

// runJob answers one job's pairs under snap and releases its waiter, counting
// the pairs answered. A panic inside one lookup fails that job's remaining
// pairs but not the rest of the batch.
func (s *Server) runJob(snap *Snapshot, j *job) int {
	n := j.len()
	k := 0
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			err := fmt.Errorf("%w: %v", ErrPanicked, r)
			for ; k < n; k++ {
				j.out[j.pos(k)] = Result{Seq: snap.Seq, Err: err}
				s.errored.Inc()
			}
		}
		s.latency.Observe(time.Since(j.start).Nanoseconds())
		j.wg.Done()
	}()
	for ; k < n; k++ {
		p := j.pairs[j.pos(k)]
		j.out[j.pos(k)] = s.answer(snap, p[0], p[1])
	}
	return n
}

// DistEstimate returns d(src, dst) on TierFull snapshots and a
// stretch-bounded upper bound on TierTables snapshots (exact at distances 0
// and 1 via the adjacency bitset, ≤ 3·d beyond that — the landmark detour
// bound). It is the one distance read the answer path performs, and it
// allocates nothing on either tier.
func (s *Snapshot) DistEstimate(src, dst int) int {
	if s.Dist != nil {
		return s.Dist.Dist(src, dst)
	}
	if src == dst {
		return 0
	}
	if s.Graph.HasEdge(src, dst) {
		return 1
	}
	return s.est.EstimateDist(src, dst)
}

// answer resolves one lookup against one snapshot, consulting the failure
// overlay: a next hop across a down link or into a down node is replaced by
// a live detour (degraded mode) until the repairer's rebuild lands.
func (s *Server) answer(snap *Snapshot, src, dst int) Result {
	if o := snap.owned; o != nil && !o.Has(src) {
		// Keyspace-restricted snapshot: this group does not own src. The
		// sentinel is definite (no wrapping, no allocation) — the shard router
		// re-asks the owning group.
		s.wrongShard.Inc()
		return Result{Seq: snap.Seq, Err: ErrWrongShard}
	}
	ov := s.overlay.Load()
	if ov != nil && (ov.nodeDown(dst) || ov.nodeDown(src)) {
		s.unavailable.Inc()
		return Result{Seq: snap.Seq, Err: fmt.Errorf("%w: node down", ErrUnavailable)}
	}
	next, err := snap.NextHop(src, dst)
	if err != nil {
		s.errored.Inc()
		return Result{Seq: snap.Seq, Err: err}
	}
	if ov != nil && (ov.nodeDown(next) || ov.linkDown(src, next)) {
		return s.detour(snap, ov, src, dst)
	}
	res := Result{
		Next:     next,
		Dist:     snap.DistEstimate(src, dst),
		NextDist: snap.DistEstimate(next, dst),
		Seq:      snap.Seq,
	}
	// Stretch sampling needs exact ground truth; on TierTables snapshots the
	// spot grader (internal/serve/spotgrade) owns verification instead.
	if k := s.opts.StretchSampleEvery; k > 0 && snap.Dist != nil && s.sampleCt.Add(1)%uint64(k) == 0 {
		s.sampleStretch(snap, src, dst, res.Dist)
	}
	return res
}

// detour serves a degraded answer around a poisoned next hop: the live
// neighbour of src closest to dst under the snapshot's ground truth, accepted
// only within the degraded stretch budget 1+d(w,dst) ≤ d(src,dst)+2. On the
// paper's diameter-2 graphs (Lemma 2) a live common neighbour always
// satisfies the budget, so detours exist whenever src retains any live link
// on a shortest-or-near path — otherwise the lookup is honestly unavailable
// rather than silently wrong.
func (s *Server) detour(snap *Snapshot, ov *overlay, src, dst int) Result {
	bestW, bestD := 0, -1
	for _, w := range snap.Graph.Neighbors(src) {
		if ov.linkDown(src, w) || ov.nodeDown(w) {
			continue
		}
		if w == dst {
			bestW, bestD = w, 0
			break
		}
		d := snap.DistEstimate(w, dst)
		if d == shortestpath.Unreachable {
			continue
		}
		if bestD < 0 || d < bestD {
			bestW, bestD = w, d
		}
	}
	dist := snap.DistEstimate(src, dst)
	if bestD < 0 || (dist >= 0 && 1+bestD > dist+2) {
		s.unavailable.Inc()
		return Result{Seq: snap.Seq, Err: fmt.Errorf("%w: no detour within budget at %d→%d", ErrUnavailable, src, dst)}
	}
	s.degraded.Inc()
	return Result{
		Next:     bestW,
		Dist:     dist,
		NextDist: bestD,
		Seq:      snap.Seq,
		Degraded: true,
	}
}
