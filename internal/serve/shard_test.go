package serve

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"routetab/internal/graph"
	"routetab/internal/keyspace"
)

func halfOwned(t *testing.T, n int) *keyspace.Set {
	t.Helper()
	owned, err := keyspace.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= n/2; u++ {
		owned.Add(u)
	}
	return owned
}

// TestShardEngineTablesTier: a restricted tables-tier engine answers owned
// sources exactly like an unrestricted engine, refuses foreign sources with
// ErrWrongShard, and its encoded tables are strictly smaller than the full
// build — the per-shard resync-bytes win.
func TestShardEngineTablesTier(t *testing.T) {
	const n = 120
	g := sparseGraph(t, n, 5)
	owned := halfOwned(t, n)
	eng, err := NewShardEngine(g, "landmark", TierTables, owned)
	if err != nil {
		t.Fatal(err)
	}
	full := tieredEngine(t, n, 5)
	snap, fullSnap := eng.Current(), full.Current()
	if snap.Owned() == nil || !snap.Owned().Equal(owned) {
		t.Fatalf("snapshot owned = %v, want %v", snap.Owned(), owned)
	}
	if len(snap.TablesBytes()) >= len(fullSnap.TablesBytes()) {
		t.Fatalf("restricted tables %dB not below full %dB",
			len(snap.TablesBytes()), len(fullSnap.TablesBytes()))
	}
	srv := NewServer(eng, ServerOptions{Shards: 2, StretchSampleEvery: -1})
	defer srv.Close()
	for src := 1; src <= n; src += 3 {
		for dst := 1; dst <= n; dst += 17 {
			if src == dst {
				continue
			}
			res := srv.NextHop(src, dst)
			if !owned.Has(src) {
				if !errors.Is(res.Err, ErrWrongShard) {
					t.Fatalf("NextHop(%d,%d) from foreign source: err = %v, want ErrWrongShard", src, dst, res.Err)
				}
				continue
			}
			if res.Err != nil {
				t.Fatalf("NextHop(%d,%d): %v", src, dst, res.Err)
			}
			want, err := fullSnap.NextHop(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Next != want {
				t.Fatalf("NextHop(%d,%d) = %d, full engine says %d", src, dst, res.Next, want)
			}
		}
	}
}

// TestShardEngineFullTier: full-tier restriction is serve-level only — the
// matrix stays whole, but foreign sources are still refused.
func TestShardEngineFullTier(t *testing.T) {
	const n = 48
	g := sparseGraph(t, n, 7)
	owned := halfOwned(t, n)
	eng, err := NewShardEngine(g, "fulltable", TierFull, owned)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Current()
	if snap.Dist == nil {
		t.Fatal("full-tier shard engine lost its matrix")
	}
	srv := NewServer(eng, ServerOptions{Shards: 2, StretchSampleEvery: -1})
	defer srv.Close()
	if res := srv.NextHop(n, 1); !errors.Is(res.Err, ErrWrongShard) {
		t.Fatalf("foreign source err = %v, want ErrWrongShard", res.Err)
	}
	if res := srv.NextHop(1, n); res.Err != nil {
		t.Fatalf("owned source: %v", res.Err)
	}
}

// TestShardEngineDeterminism: two shard engines fed the same mutation
// sequence publish byte-identical restricted tables — the digest-convergence
// property shard-group anti-entropy checks.
func TestShardEngineDeterminism(t *testing.T) {
	const n = 100
	owned := halfOwned(t, n)
	var tables [][]byte
	for i := 0; i < 2; i++ {
		eng, err := NewShardEngine(sparseGraph(t, n, 11), "landmark", TierTables, owned)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Mutate(func(g *graph.Graph) error { return g.RemoveEdge(g.Neighbors(1)[0], 1) }); err != nil {
			t.Fatal(err)
		}
		tables = append(tables, eng.Current().TablesBytes())
	}
	if !bytes.Equal(tables[0], tables[1]) {
		t.Fatal("restricted engines diverged on identical mutations")
	}
}

// TestShardEnginePersistRoundTrip: a restricted snapshot survives
// save/restore with its owned set intact, and the restored engine keeps
// restricting later rebuilds.
func TestShardEnginePersistRoundTrip(t *testing.T) {
	const n = 100
	owned := halfOwned(t, n)
	eng, err := NewShardEngine(sparseGraph(t, n, 13), "landmark", TierTables, owned)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.snap")
	if err := eng.EnablePersist(path); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Current().Owned(); got == nil || !got.Equal(owned) {
		t.Fatalf("restored owned = %v, want %v", got, owned)
	}
	if !bytes.Equal(restored.Current().TablesBytes(), eng.Current().TablesBytes()) {
		t.Fatal("restored tables differ")
	}
	snap, err := restored.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Owned() == nil || !snap.Owned().Equal(owned) {
		t.Fatal("restriction lost across restored rebuild")
	}
}

// TestMutateOwned: ownership changes publish atomically with the topology
// they apply to, SetOwned(nil) lifts the restriction, and a failed mutation
// rolls the ownership back with the graph.
func TestMutateOwned(t *testing.T) {
	const n = 100
	g := sparseGraph(t, n, 17)
	eng, err := NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	owned := halfOwned(t, n)
	snap, err := eng.SetOwned(owned)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Owned() == nil || !snap.Owned().Equal(owned) {
		t.Fatalf("owned after SetOwned = %v", snap.Owned())
	}
	failErr := errors.New("boom")
	if _, err := eng.MutateOwned(nil, func(*graph.Graph) error { return failErr }); !errors.Is(err, failErr) {
		t.Fatalf("mutation error = %v", err)
	}
	if got := eng.Owned(); got == nil || !got.Equal(owned) {
		t.Fatalf("failed MutateOwned changed ownership to %v", got)
	}
	snap, err = eng.SetOwned(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Owned() != nil {
		t.Fatal("SetOwned(nil) left a restriction")
	}
}
