package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunClusterSmall is the deterministic tier-1 cluster gate: a 3-member
// G(32, 1/2) cluster must survive a partition of every replica, a WAL
// corruption, a WAL truncation, and a primary kill + promotion with zero
// incorrect answers and byte-identical convergence at quiesce.
func TestRunClusterSmall(t *testing.T) {
	cfg := ClusterConfig{
		N:        32,
		Seed:     7,
		Scheme:   "fulltable",
		Replicas: 2,
		Lookups:  30_000,
		Workers:  4,
	}
	rep, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("cluster chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.Incorrect != 0 {
		t.Fatalf("incorrect answers: %d", rep.Incorrect)
	}
	if rep.Correct == 0 {
		t.Fatalf("no correct answers graded (lookups=%d)", rep.Lookups)
	}
	if rep.Members != 3 {
		t.Errorf("members = %d, want 3", rep.Members)
	}
	if rep.Partitions < cfg.Replicas {
		t.Errorf("partitions injected = %d, want ≥ %d", rep.Partitions, cfg.Replicas)
	}
	if rep.Corruptions != 1 {
		t.Errorf("corruptions injected = %d, want 1", rep.Corruptions)
	}
	if rep.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", rep.Truncations)
	}
	if !rep.Promoted || rep.FinalEpoch != 2 {
		t.Errorf("promotion: promoted=%v epoch=%d, want true/2", rep.Promoted, rep.FinalEpoch)
	}
	if rep.CrashRestarts != 1 || !rep.WalRecovered {
		t.Errorf("crash phase: restarts=%d wal_recovered=%v, want 1/true", rep.CrashRestarts, rep.WalRecovered)
	}
	if rep.RecoveryResyncs != 0 {
		t.Errorf("crash restart cost %d full resyncs, want 0 (replicas must catch up via WAL)", rep.RecoveryResyncs)
	}
	if rep.FailoverNs <= 0 {
		t.Errorf("failover latency not measured")
	}
	if rep.Resyncs == 0 {
		t.Errorf("no resyncs recorded (corruption/truncation/promotion must force some)")
	}
	if !rep.DigestsConverged || !rep.TablesIdentical {
		t.Errorf("quiesce: digests=%v identical=%v", rep.DigestsConverged, rep.TablesIdentical)
	}
	if rep.AvailabilityPct < 99 {
		t.Errorf("availability %.3f%% below 99%%", rep.AvailabilityPct)
	}
	served := uint64(0)
	for _, m := range rep.PerMember {
		served += m.Served
	}
	if served == 0 {
		t.Errorf("per-member accounting empty: %+v", rep.PerMember)
	}
}

// TestRunClusterNoKill checks the partition/corruption path standalone: no
// promotion, epoch stays 1, and convergence still holds.
func TestRunClusterNoKill(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		N:        24,
		Seed:     11,
		Replicas: 2,
		Lookups:  15_000,
		Workers:  3,
		SkipKill: true,
	})
	if err != nil {
		t.Fatalf("cluster chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.Promoted || rep.FinalEpoch != 1 {
		t.Errorf("no-kill run promoted=%v epoch=%d", rep.Promoted, rep.FinalEpoch)
	}
	if !rep.DigestsConverged || !rep.TablesIdentical {
		t.Errorf("quiesce: digests=%v identical=%v", rep.DigestsConverged, rep.TablesIdentical)
	}
}

func TestWriteClusterCSV(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		N:        16,
		Seed:     3,
		Replicas: 1,
		Lookups:  8_000,
		Workers:  2,
		SkipKill: true,
	})
	if err != nil {
		t.Fatalf("run: %v\nreport: %v", err, rep)
	}
	var buf bytes.Buffer
	if err := WriteClusterCSV(&buf, []*ClusterReport{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if lines[0] != ClusterCSVHeader {
		t.Fatalf("header mismatch: %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != strings.Count(ClusterCSVHeader, ",") {
		t.Fatalf("row has %d commas, header %d", got, strings.Count(ClusterCSVHeader, ","))
	}
}
