package chaos

import (
	"errors"
	"sync/atomic"
	"time"

	"routetab/internal/serve"
)

// grader is the shared answer-judging core of both harnesses (single-node
// Run and cluster RunCluster): atomic tallies plus the grading rule. The
// soundness argument is the same everywhere — Dist/NextDist come from the
// same snapshot that produced Next, so hot swaps, rebuilds, and replica
// staleness cannot produce false verdicts.
type grader struct {
	answered    atomic.Uint64
	correct     atomic.Uint64
	degraded    atomic.Uint64
	incorrect   atomic.Uint64
	rejected    atomic.Uint64
	unavailable atomic.Uint64
	errored     atomic.Uint64
	maxExtra    atomic.Int64
}

// grade judges one answer and returns a suggested backoff when the server
// asked for one. Strict branch: NextDist == Dist−1 in the serving snapshot.
// Degraded branch: the detour's first hop plus remaining snapshot distance
// must be within +2 hops of the snapshot's shortest path.
func (h *grader) grade(r *serve.Result) time.Duration {
	var oe *serve.OverloadedError
	switch {
	case errors.As(r.Err, &oe):
		h.rejected.Add(1)
		return oe.RetryAfter
	case errors.Is(r.Err, serve.ErrOverloaded), errors.Is(r.Err, serve.ErrClosed):
		h.rejected.Add(1)
		return 500 * time.Microsecond
	case errors.Is(r.Err, serve.ErrUnavailable):
		h.unavailable.Add(1)
		return 0
	case r.Err != nil:
		h.errored.Add(1)
		return 0
	case r.Degraded:
		if r.NextDist < 0 || (r.Dist >= 0 && 1+r.NextDist > r.Dist+2) {
			h.incorrect.Add(1)
			return 0
		}
		extra := int64(1 + r.NextDist - r.Dist)
		for {
			cur := h.maxExtra.Load()
			if extra <= cur || h.maxExtra.CompareAndSwap(cur, extra) {
				break
			}
		}
		h.degraded.Add(1)
		return 0
	case r.NextDist == r.Dist-1:
		h.correct.Add(1)
		return 0
	default:
		h.incorrect.Add(1)
		return 0
	}
}
