package chaos

import "testing"

// TestRunWire: the mixed-protocol phase must hold its invariants on a small
// deterministic run — both protocols served, swaps observed by clients, and
// not one incorrect or errored answer over either transport.
func TestRunWire(t *testing.T) {
	rep, err := RunWire(WireConfig{N: 24, Seed: 7, Lookups: 4000, Swaps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("invariants not held: %s", rep)
	}
	if rep.JSONLookups != 4000 || rep.BinLookups != 4000 {
		t.Fatalf("lookup targets missed: %s", rep)
	}
	if rep.Correct+rep.Degraded+rep.Rejected+rep.Unavailable == 0 {
		t.Fatalf("nothing graded: %s", rep)
	}
}
