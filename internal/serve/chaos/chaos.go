// Package chaos is the serve-layer chaos harness: it drives a closed-loop,
// self-validating load (loadgen-style seeded query streams) against a live
// server while injecting the failure modes a production routing service
// actually meets — stalled shard workers, dropped batches, topology churn
// bursts from a seeded faultinject plan, and process kills mid-swap recovered
// through crash-safe snapshot persistence — and grades every single answer.
//
// The harness's contract mirrors the repo-wide soundness rule: failures may
// cost availability (sheds, honest ErrUnavailable) and latency, but never
// correctness. A run fails if any lookup is answered incorrectly, if a
// degraded detour exceeds the +2-hop budget over the serving snapshot's
// distance, if unavailability exceeds the configured fraction, if a restore
// is not byte-identical, or if the topology does not self-heal to its
// pre-chaos state (byte-identical distance matrix) once every fault is
// repaired.
//
// Injection order is deterministic (seeded plan, progress-paced phases):
// stalls, then drop windows, then churn bursts, then full repair, then
// kill+restore cycles — so wall-clock jitter changes timings, never which
// faults a run faces.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

// Config parameterises one chaos run.
type Config struct {
	// N is the G(n, 1/2) topology size (default 64).
	N int
	// Seed keys the topology, the query streams, and the fault plan.
	Seed int64
	// Scheme must be a shortest-path scheme (strict grading; default
	// "fulltable").
	Scheme string
	// Lookups is the total lookup target across workers (default 200_000).
	Lookups uint64
	// Workers is the closed-loop client count (default 6).
	Workers int
	// BatchSize is pairs per client batch (default 16).
	BatchSize int

	// Stalls is how many shard-stall injections to run (default 2).
	Stalls int
	// StallDur is how long an injected stall holds its worker (default 20ms).
	StallDur time.Duration
	// SurgeWorkers is how many extra single-pair clients hammer the stalled
	// shard during each stall (default 12 — above the queue capacity, so the
	// stalled shard saturates, trips its breaker, and sheds to siblings; a
	// closed loop alone would just park politely behind the stall).
	SurgeWorkers int
	// Drops is how many batch-drop windows to run (default 2).
	Drops int
	// DropBatches is how many worker batches each drop window discards
	// (default 40).
	DropBatches int
	// Bursts is how many churn bursts the fault plan schedules (default 5).
	Bursts int
	// BurstLinks is the expected link failures per burst (default 8).
	BurstLinks int
	// BurstNodes is the expected node crashes per burst (default 1).
	BurstNodes int
	// Kills is how many kill+restore cycles to run (default 2; each one
	// fires a hot swap concurrently with the kill, closes the server, and
	// restores the engine from the persisted snapshot file).
	Kills int
	// PersistPath is the snapshot file for kill recovery (default: a file
	// in the OS temp dir, removed afterwards).
	PersistPath string
	// MaxUnavailableFrac bounds the tolerated unavailable fraction —
	// sheds, kill-window rejections, and honest ErrUnavailable answers,
	// over all graded lookups (default 0.10).
	MaxUnavailableFrac float64
}

func (c *Config) setDefaults() {
	if c.N < 8 {
		c.N = 64
	}
	if c.Scheme == "" {
		c.Scheme = "fulltable"
	}
	if c.Lookups == 0 {
		c.Lookups = 200_000
	}
	if c.Workers < 1 {
		c.Workers = 6
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
	if c.Stalls < 0 {
		c.Stalls = 0
	} else if c.Stalls == 0 {
		c.Stalls = 2
	}
	if c.StallDur <= 0 {
		c.StallDur = 20 * time.Millisecond
	}
	if c.SurgeWorkers < 1 {
		// Twice the closed loop plus slack: always above the server's queue
		// capacity (Workers+2), so a stall overflows rather than just queues.
		c.SurgeWorkers = c.Workers*2 + 4
	}
	if c.Drops < 0 {
		c.Drops = 0
	} else if c.Drops == 0 {
		c.Drops = 2
	}
	if c.DropBatches < 1 {
		c.DropBatches = 40
	}
	if c.Bursts < 0 {
		c.Bursts = 0
	} else if c.Bursts == 0 {
		c.Bursts = 5
	}
	if c.BurstLinks < 1 {
		c.BurstLinks = 8
	}
	if c.BurstNodes < 0 {
		c.BurstNodes = 0
	} else if c.BurstNodes == 0 {
		c.BurstNodes = 1
	}
	if c.Kills < 0 {
		c.Kills = 0
	} else if c.Kills == 0 {
		c.Kills = 2
	}
	if c.MaxUnavailableFrac <= 0 {
		c.MaxUnavailableFrac = 0.10
	}
}

// Report is one chaos run's graded outcome.
type Report struct {
	Scheme string `json:"scheme"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`

	Lookups     uint64 `json:"lookups"`
	Correct     uint64 `json:"correct"`
	Degraded    uint64 `json:"degraded"`
	Incorrect   uint64 `json:"incorrect"`
	Rejected    uint64 `json:"rejected"`
	Unavailable uint64 `json:"unavailable"`
	Errored     uint64 `json:"errored"`

	Stalls      int    `json:"stalls"`
	Drops       int    `json:"drops"`
	Bursts      int    `json:"bursts"`
	BurstEvents int    `json:"burst_events"`
	Kills       int    `json:"kills"`
	Trips       uint64 `json:"breaker_trips"`
	Shunts      uint64 `json:"breaker_shunts"`

	AvailabilityPct    float64       `json:"availability_pct"`
	P99UnderChaosNs    int64         `json:"p99_under_chaos_ns"`
	MaxDetourExtraHops int64         `json:"max_detour_extra_hops"`
	RecoveryNs         int64         `json:"recovery_ns"`
	RestoredIdentical  bool          `json:"restored_identical"`
	SelfHealed         bool          `json:"self_healed"`
	FinalSeq           uint64        `json:"final_seq"`
	Elapsed            time.Duration `json:"elapsed_ns"`
	QPS                float64       `json:"qps"`
}

// String renders the headline figures.
func (r *Report) String() string {
	return fmt.Sprintf("chaos %s n=%d: %d lookups (%.0f qps), %.3f%% available (correct=%d degraded=%d rejected=%d unavailable=%d errored=%d incorrect=%d), %d bursts/%d events, %d trips/%d shunts, %d kills (recovery %v, identical=%v), p99 %v, max detour +%d, self-healed=%v",
		r.Scheme, r.N, r.Lookups, r.QPS, r.AvailabilityPct,
		r.Correct, r.Degraded, r.Rejected, r.Unavailable, r.Errored, r.Incorrect,
		r.Bursts, r.BurstEvents, r.Trips, r.Shunts, r.Kills, time.Duration(r.RecoveryNs), r.RestoredIdentical,
		time.Duration(r.P99UnderChaosNs), r.MaxDetourExtraHops, r.SelfHealed)
}

// Errors a run can fail with (the report is always returned alongside).
var (
	ErrIncorrect    = errors.New("chaos: incorrect answers served")
	ErrBudget       = errors.New("chaos: unavailability budget exceeded")
	ErrDetourBudget = errors.New("chaos: degraded detour exceeded +2 hop budget")
	ErrRestore      = errors.New("chaos: restored snapshot not byte-identical")
	ErrNotHealed    = errors.New("chaos: topology did not self-heal after repairs")
)

// controller is the injection state the server's ChaosHook reads.
type controller struct {
	stallShard atomic.Int32
	stallUntil atomic.Int64
	dropShard  atomic.Int32
	dropsLeft  atomic.Int64
}

// hook implements serve.ServerOptions.ChaosHook: an armed stall sleeps the
// worker (the queue backs up, the breaker trips, siblings absorb the load);
// an armed drop window discards whole batches (definite per-pair sheds).
func (c *controller) hook(shard int) bool {
	if int32(shard) == c.stallShard.Load() {
		if until := c.stallUntil.Load(); time.Now().UnixNano() < until {
			time.Sleep(time.Duration(until - time.Now().UnixNano()))
		}
	}
	if int32(shard) == c.dropShard.Load() && c.dropsLeft.Load() > 0 {
		if c.dropsLeft.Add(-1) >= 0 {
			return true
		}
	}
	return false
}

// phase is one scheduled injection, fired at a lookup-progress milestone.
type phase struct {
	name string
	run  func() error
}

// Run executes one chaos run and grades every answer. The returned report is
// complete even when the run fails; the error says which invariant broke.
func Run(cfg Config) (*Report, error) {
	cfg.setDefaults()
	if !serve.KnownScheme(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: unknown scheme %q", cfg.Scheme)
	}
	if !serve.IsShortestPath(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: scheme %q is not shortest-path; strict grading needs stretch 1", cfg.Scheme)
	}
	g, err := gengraph.GnHalf(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	persist := cfg.PersistPath
	if persist == "" && cfg.Kills > 0 {
		dir, err := os.MkdirTemp("", "routetab-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		persist = filepath.Join(dir, "snapshot.rtsnap")
	}

	eng, err := serve.NewEngine(g, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if persist != "" {
		if err := eng.EnablePersist(persist); err != nil {
			return nil, err
		}
	}
	baseline := append([]byte(nil), eng.Current().Dist.Packed()...)

	ctl := &controller{}
	ctl.stallShard.Store(-1)
	ctl.dropShard.Store(-1)
	opts := serve.ServerOptions{
		// The queue holds the whole closed loop (no steady-state sheds), but
		// not the stall surge: SurgeWorkers extra clients overflow a stalled
		// shard in microseconds, trip its breaker, and shunt to siblings.
		// The short cooldown re-probes quickly once the stall clears.
		Shards:           4,
		QueueCap:         cfg.Workers + 2,
		BreakerThreshold: 4,
		BreakerCooldown:  time.Millisecond,
		ChaosHook:        ctl.hook,
	}
	h := &harness{cfg: cfg, ctl: ctl, opts: opts, persist: persist, baseline: baseline}
	h.srv.Store(serve.NewServer(eng, opts))
	h.rep = serve.NewRepairer(h.srv.Load(), serve.RepairOptions{})
	defer func() {
		h.rep.Close()
		h.srv.Load().Close()
	}()

	// The churn plan: cfg.Bursts waves of link/node failures, each repaired
	// one tick later, drawn δ-random style over the whole topology. The
	// repairer is the injection target, so the exact event sequence is the
	// plan's — deterministic in (graph, config, seed).
	m := g.M()
	pc := faultinject.PlanConfig{
		LinkFailProb:  clampProb(float64(cfg.Bursts*cfg.BurstLinks) / float64(max(m, 1))),
		NodeCrashProb: clampProb(float64(cfg.Bursts*cfg.BurstNodes) / float64(cfg.N)),
		Horizon:       cfg.Bursts,
		RepairAfter:   1,
	}
	plan, err := faultinject.RandomPlan(g, pc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h.inj, err = faultinject.New(faultinject.Config{Seed: cfg.Seed}, plan)
	if err != nil {
		return nil, err
	}
	h.inj.Bind(targetFn{h})
	h.burstEvents = len(plan.Events)

	phases := h.buildPhases()
	rep, runErr := h.drive(phases)
	return rep, runErr
}

// targetFn forwards injector events to whichever repairer is current (kills
// replace the repairer, the plan outlives it).
type targetFn struct{ h *harness }

func (t targetFn) SetLinkDown(u, v int, isDown bool) error { return t.h.rep.SetLinkDown(u, v, isDown) }
func (t targetFn) SetNodeDown(u int, isDown bool) error    { return t.h.rep.SetNodeDown(u, isDown) }

// harness is one run's mutable state.
type harness struct {
	cfg      Config
	ctl      *controller
	opts     serve.ServerOptions
	persist  string
	baseline []byte

	srv atomic.Pointer[serve.Server]
	rep *serve.Repairer
	inj *faultinject.Injector

	grader

	burstEvents     int
	stallsDone      int
	dropsDone       int
	burstsDone      int
	killsDone       int
	recoveryNs      int64
	p99UnderChaos   int64
	restoredOK      bool
	restoreMismatch error
	trips           uint64 // breaker trips, summed across server generations
	shunts          uint64 // breaker shunts, summed across server generations
}

// harvest folds a retiring (or final) server's breaker counters into the run
// totals — kills replace the server and would otherwise discard them.
func (h *harness) harvest(srv *serve.Server) {
	reg := srv.Metrics()
	h.trips += reg.Counter("serve_breaker_trips_total").Value()
	h.shunts += reg.Counter("serve_breaker_shunts_total").Value()
}

// buildPhases lays out the deterministic injection schedule.
func (h *harness) buildPhases() []phase {
	var ps []phase
	for i := 0; i < h.cfg.Stalls; i++ {
		shard := i % h.opts.Shards
		seed := h.cfg.Seed + int64(i)*104729
		ps = append(ps, phase{name: fmt.Sprintf("stall shard %d", shard), run: func() error {
			h.ctl.stallUntil.Store(time.Now().Add(h.cfg.StallDur).UnixNano())
			h.ctl.stallShard.Store(int32(shard))
			h.surge(shard, seed)
			h.ctl.stallShard.Store(-1)
			h.stallsDone++
			return nil
		}})
	}
	for i := 0; i < h.cfg.Drops; i++ {
		shard := (i + 1) % h.opts.Shards
		ps = append(ps, phase{name: fmt.Sprintf("drop window shard %d", shard), run: func() error {
			h.ctl.dropShard.Store(int32(shard))
			h.ctl.dropsLeft.Store(int64(h.cfg.DropBatches))
			h.dropsDone++
			return nil
		}})
	}
	for b := 0; b < h.cfg.Bursts; b++ {
		tick := b
		ps = append(ps, phase{name: fmt.Sprintf("churn burst %d", tick), run: func() error {
			if err := h.inj.AdvanceTo(tick); err != nil {
				return err
			}
			h.burstsDone++
			return nil
		}})
	}
	ps = append(ps, phase{name: "repair all", run: func() error {
		if err := h.inj.Finish(); err != nil {
			return err
		}
		if err := h.rep.Flush(); err != nil {
			return err
		}
		// Freeze the "p99 under chaos" figure before kills replace the
		// server (and its histogram): this covers stalls, drops and bursts.
		h.p99UnderChaos = h.srv.Load().Metrics().Histogram("serve_latency_ns", nil).Quantile(0.99)
		return nil
	}})
	for i := 0; i < h.cfg.Kills; i++ {
		ps = append(ps, phase{name: fmt.Sprintf("kill %d", i), run: h.killRestore})
	}
	return ps
}

// surge runs SurgeWorkers extra single-pair clients for the stall window, all
// sourced from nodes owned by the stalled shard. The shard's queue overflows,
// its breaker trips, and the overflow is answered — correctly, same snapshot —
// by sibling shards. Every surge lookup is graded like any other.
func (h *harness) surge(shard int, seed int64) {
	deadline := time.Now().Add(h.cfg.StallDur)
	// Source nodes that hash to the stalled shard (shardOf = src mod Shards).
	var srcs []int
	for src := 1; src <= h.cfg.N; src++ {
		if src%h.opts.Shards == shard {
			srcs = append(srcs, src)
		}
	}
	if len(srcs) == 0 {
		time.Sleep(h.cfg.StallDur)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < h.cfg.SurgeWorkers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*31 + int64(i)))
			for time.Now().Before(deadline) {
				src := srcs[rng.Intn(len(srcs))]
				dst := rng.Intn(h.cfg.N-1) + 1
				if dst >= src {
					dst++
				}
				res := h.srv.Load().NextHop(src, dst)
				h.answered.Add(1)
				if b := h.grade(&res); b > 0 {
					if b > time.Millisecond {
						b = time.Millisecond
					}
					time.Sleep(b)
				}
			}
		}()
	}
	wg.Wait()
}

// killRestore is one crash cycle: fire a hot swap concurrently with the kill
// (the "mid-swap" case — the persisted file is atomically either snapshot),
// close the server, restore the engine from disk, verify byte-identical
// recovery, and resume serving on a fresh server + repairer.
func (h *harness) killRestore() error {
	old := h.srv.Load()
	eng := old.Engine()
	preSeq := eng.Current().Seq
	preDist := append([]byte(nil), eng.Current().Dist.Packed()...)

	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		_, _ = eng.Reload() // racing hot swap; a pure republish, so content is unchanged
	}()
	start := time.Now()
	h.rep.Close()
	old.Close()
	h.harvest(old)

	restored, err := serve.RestoreEngine(h.persist)
	<-swapDone
	eng.DisablePersist()
	if err != nil {
		return fmt.Errorf("chaos: restore after kill: %w", err)
	}
	snap := restored.Current()
	// The racing swap means the file held Seq preSeq or preSeq+1 — but the
	// packed distances must match the pre-kill snapshot byte for byte.
	if !bytes.Equal(snap.Dist.Packed(), preDist) || snap.Seq < preSeq || snap.Seq > preSeq+1 {
		h.restoreMismatch = fmt.Errorf("%w: seq %d (pre-kill %d)", ErrRestore, snap.Seq, preSeq)
		return h.restoreMismatch
	}
	if err := restored.EnablePersist(h.persist); err != nil {
		return err
	}
	srv := serve.NewServer(restored, h.opts)
	h.rep = serve.NewRepairer(srv, serve.RepairOptions{})
	h.srv.Store(srv)
	// Recovery = kill start → first served lookup on the restored engine.
	for {
		if res := srv.NextHop(1, 2); res.Err == nil {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if ns := time.Since(start).Nanoseconds(); ns > h.recoveryNs {
		h.recoveryNs = ns
	}
	h.restoredOK = true
	h.killsDone++
	return nil
}

// drive runs the closed-loop workers and fires each phase at its progress
// milestone, then assembles and grades the final report.
func (h *harness) drive(phases []phase) (*Report, error) {
	cfg := h.cfg
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	var issued atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)*7919))
			pairs := make([][2]int, cfg.BatchSize)
			out := make([]serve.Result, cfg.BatchSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if issued.Add(uint64(cfg.BatchSize)) > cfg.Lookups {
					halt()
					return
				}
				for i := range pairs {
					src := rng.Intn(cfg.N) + 1
					dst := rng.Intn(cfg.N-1) + 1
					if dst >= src {
						dst++
					}
					pairs[i] = [2]int{src, dst}
				}
				srv := h.srv.Load()
				if err := srv.LookupBatch(pairs, out); err != nil {
					halt()
					return
				}
				h.answered.Add(uint64(len(out)))
				backoff := time.Duration(0)
				for i := range out {
					if b := h.grade(&out[i]); b > backoff {
						backoff = b
					}
				}
				if backoff > 0 {
					// Honour the shed's retry-after hint (clamped so a
					// stall cannot park the whole closed loop).
					if backoff > 2*time.Millisecond {
						backoff = 2 * time.Millisecond
					}
					time.Sleep(backoff)
				}
			}
		}()
	}

	// Controller: fire phase k once answered lookups pass its milestone.
	ctlErr := make(chan error, 1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		total := len(phases)
		for k, ph := range phases {
			threshold := cfg.Lookups * uint64(k+1) / uint64(total+1)
			for h.answered.Load() < threshold {
				select {
				case <-stop:
					// Workers hit the target early (or failed): run the
					// remaining phases back-to-back so the configured fault
					// schedule always completes.
				case <-time.After(100 * time.Microsecond):
					continue
				}
				break
			}
			if err := ph.run(); err != nil {
				select {
				case ctlErr <- fmt.Errorf("chaos phase %q: %w", ph.name, err):
				default:
				}
				return
			}
		}
	}()

	wg.Wait()
	halt()
	ctlWG.Wait()
	elapsed := time.Since(start)

	var phaseErr error
	select {
	case phaseErr = <-ctlErr:
	default:
	}

	// Self-heal check: every fault repaired and incorporated, the serving
	// topology must be byte-identically back to the pre-chaos matrix.
	if err := h.rep.Flush(); err != nil && phaseErr == nil {
		phaseErr = err
	}
	finalSnap := h.srv.Load().Engine().Current()
	selfHealed := bytes.Equal(finalSnap.Dist.Packed(), h.baseline)
	h.harvest(h.srv.Load())

	rep := &Report{
		Scheme:             cfg.Scheme,
		N:                  cfg.N,
		Seed:               cfg.Seed,
		Lookups:            h.answered.Load(),
		Correct:            h.correct.Load(),
		Degraded:           h.degraded.Load(),
		Incorrect:          h.incorrect.Load(),
		Rejected:           h.rejected.Load(),
		Unavailable:        h.unavailable.Load(),
		Errored:            h.errored.Load(),
		Stalls:             h.stallsDone,
		Drops:              h.dropsDone,
		Bursts:             h.burstsDone,
		BurstEvents:        h.burstEvents,
		Kills:              h.killsDone,
		Trips:              h.trips,
		Shunts:             h.shunts,
		MaxDetourExtraHops: h.maxExtra.Load(),
		RecoveryNs:         h.recoveryNs,
		P99UnderChaosNs:    h.p99UnderChaos,
		RestoredIdentical:  h.restoredOK && h.restoreMismatch == nil,
		SelfHealed:         selfHealed,
		FinalSeq:           finalSnap.Seq,
		Elapsed:            elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Lookups) / elapsed.Seconds()
	}
	served := rep.Correct + rep.Degraded
	if rep.Lookups > 0 {
		rep.AvailabilityPct = 100 * float64(served) / float64(rep.Lookups)
	}

	switch {
	case phaseErr != nil:
		return rep, phaseErr
	case rep.Incorrect > 0:
		return rep, fmt.Errorf("%w: %d of %d", ErrIncorrect, rep.Incorrect, rep.Lookups)
	case rep.MaxDetourExtraHops > 2:
		return rep, fmt.Errorf("%w: +%d hops", ErrDetourBudget, rep.MaxDetourExtraHops)
	case rep.Lookups > 0 && float64(rep.Lookups-served) > cfg.MaxUnavailableFrac*float64(rep.Lookups):
		return rep, fmt.Errorf("%w: %d of %d unserved (budget %.0f%%)",
			ErrBudget, rep.Lookups-served, rep.Lookups, 100*cfg.MaxUnavailableFrac)
	case cfg.Kills > 0 && !rep.RestoredIdentical:
		return rep, ErrRestore
	case !selfHealed:
		return rep, ErrNotHealed
	}
	return rep, nil
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.9 {
		return 0.9
	}
	return p
}

// CSVHeader is the docs/chaos artefact header row.
const CSVHeader = "scheme,n,seed,lookups,correct,degraded,rejected,unavailable,errored,incorrect,availability_pct,p99_under_chaos_ns,max_detour_extra_hops,bursts,burst_events,kills,breaker_trips,breaker_shunts,recovery_ns,restored_identical,self_healed,qps"

// WriteCSV renders reports in the artefact layout (EXPERIMENTS.md E15).
func WriteCSV(w io.Writer, reports []*Report) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, r := range reports {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%v,%v,%.0f\n",
			r.Scheme, r.N, r.Seed, r.Lookups, r.Correct, r.Degraded, r.Rejected, r.Unavailable,
			r.Errored, r.Incorrect, r.AvailabilityPct, r.P99UnderChaosNs, r.MaxDetourExtraHops,
			r.Bursts, r.BurstEvents, r.Kills, r.Trips, r.Shunts, r.RecoveryNs,
			r.RestoredIdentical, r.SelfHealed, r.QPS)
		if err != nil {
			return err
		}
	}
	return nil
}
