// Cluster chaos: the replication-layer counterpart of Run. A primary and a
// set of replicas serve the same topology; a cluster.Router fans a graded
// closed-loop load across all of them while the harness injects the failure
// modes a replicated routing service meets — replica partitions from a
// seeded faultinject partition plan, WAL corruption and truncation forcing
// snapshot-fetch fallbacks, and a primary kill recovered by promoting a
// replica — and grades every single answer.
//
// The contract extends the single-node harness's rule to the cluster:
// failures may cost availability (bounded by a much tighter budget, since a
// healthy member can almost always answer) but never correctness, and at
// quiesce every member must be serving byte-identical tables — asserted
// first by anti-entropy digests, then by comparing full packed distance
// matrices.
//
// Every replication fetch round-trips through the real WAL/state codec
// (encode → optionally corrupt → decode), so the bytes a routetabd cluster
// would put on the wire are the bytes this harness grades.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

// ClusterConfig parameterises one cluster chaos run.
type ClusterConfig struct {
	// N is the G(n, 1/2) topology size (default 64).
	N int
	// Seed keys the topology, query streams, churn, and partition plan.
	Seed int64
	// Scheme must be shortest-path (default "fulltable").
	Scheme string
	// Replicas is how many followers join the primary (default 2 — a
	// 3-member cluster).
	Replicas int
	// Lookups is the total lookup target across workers (default 120_000).
	Lookups uint64
	// Workers is the closed-loop client count (default 6).
	Workers int
	// ChurnRounds is how many topology mutations the primary publishes
	// across the run (default 12; each is an edge toggle or a link
	// fail/heal cycle through the repairer).
	ChurnRounds int
	// PartitionHealAfter is how many partition-plan ticks an isolated
	// replica stays cut off (default 2).
	PartitionHealAfter int
	// Corruptions is how many WAL fetches are bit-flipped on the wire
	// (default 1; each must end in a clean resync, never divergence).
	Corruptions int
	// Truncations is how many times the primary truncates its WAL under a
	// lagging replica (default 1).
	Truncations int
	// KillPrimary fires the primary kill + promotion phase (default true;
	// set SkipKill to disable).
	SkipKill bool
	// SkipCrash disables the kill -9 + WAL-recovery phase (default on: the
	// primary is crashed mid-journal, restarted cold over the same disk, and
	// must resume its epoch so replicas catch up via WAL replay, not resync).
	SkipCrash bool
	// MaxUnavailableFrac bounds the tolerated unserved fraction across the
	// whole cluster (default 0.01 — replication exists to keep answering).
	MaxUnavailableFrac float64
	// SyncInterval paces replica WAL pulls (default 300µs).
	SyncInterval time.Duration
}

func (c *ClusterConfig) setDefaults() {
	if c.N < 8 {
		c.N = 64
	}
	if c.Scheme == "" {
		c.Scheme = "fulltable"
	}
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.Lookups == 0 {
		c.Lookups = 120_000
	}
	if c.Workers < 1 {
		c.Workers = 6
	}
	if c.ChurnRounds == 0 {
		c.ChurnRounds = 12
	}
	if c.PartitionHealAfter <= 0 {
		c.PartitionHealAfter = 2
	}
	if c.Corruptions < 0 {
		c.Corruptions = 0
	} else if c.Corruptions == 0 {
		c.Corruptions = 1
	}
	if c.Truncations < 0 {
		c.Truncations = 0
	} else if c.Truncations == 0 {
		c.Truncations = 1
	}
	if c.MaxUnavailableFrac <= 0 {
		c.MaxUnavailableFrac = 0.01
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 300 * time.Microsecond
	}
}

// MemberStats is one member's share of the run.
type MemberStats struct {
	Name   string  `json:"name"`
	Served uint64  `json:"served"`
	QPS    float64 `json:"qps"`
}

// ClusterReport is one cluster chaos run's graded outcome.
type ClusterReport struct {
	Scheme  string `json:"scheme"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
	Members int    `json:"members"`

	Lookups     uint64 `json:"lookups"`
	Correct     uint64 `json:"correct"`
	Degraded    uint64 `json:"degraded"`
	Incorrect   uint64 `json:"incorrect"`
	Rejected    uint64 `json:"rejected"`
	Unavailable uint64 `json:"unavailable"`
	Errored     uint64 `json:"errored"`

	ChurnRounds  int    `json:"churn_rounds"`
	Partitions   int    `json:"partitions"`
	Corruptions  int    `json:"corruptions"`
	Truncations  int    `json:"truncations"`
	Promoted     bool   `json:"promoted"`
	FinalEpoch   uint64 `json:"final_epoch"`
	Resyncs      uint64 `json:"resyncs"`
	MaxReplayLag uint64 `json:"max_replay_lag"`

	// Crash-restart phase (JSON-only; not part of the CSV artefact layout).
	CrashRestarts   int    `json:"crash_restarts"`   // kill -9 + cold restarts performed
	WalRecovered    bool   `json:"wal_recovered"`    // restart resumed its epoch from the WAL
	RecoveryResyncs uint64 `json:"recovery_resyncs"` // full resyncs caused by the restart (must be 0)

	AvailabilityPct    float64       `json:"availability_pct"`
	MaxDetourExtraHops int64         `json:"max_detour_extra_hops"`
	FailoverNs         int64         `json:"failover_ns"`
	DigestsConverged   bool          `json:"digests_converged"`
	TablesIdentical    bool          `json:"tables_identical"`
	PerMember          []MemberStats `json:"per_member"`
	Elapsed            time.Duration `json:"elapsed_ns"`
	QPS                float64       `json:"qps"`
}

// String renders the headline figures.
func (r *ClusterReport) String() string {
	return fmt.Sprintf("cluster %s n=%d members=%d: %d lookups (%.0f qps), %.3f%% available (correct=%d degraded=%d rejected=%d unavailable=%d errored=%d incorrect=%d), %d churn rounds, %d partitions, %d corruptions, %d truncations, crashes=%d wal_recovered=%v recovery_resyncs=%d, promoted=%v epoch=%d resyncs=%d lag≤%d, failover %v, digests converged=%v tables identical=%v",
		r.Scheme, r.N, r.Members, r.Lookups, r.QPS, r.AvailabilityPct,
		r.Correct, r.Degraded, r.Rejected, r.Unavailable, r.Errored, r.Incorrect,
		r.ChurnRounds, r.Partitions, r.Corruptions, r.Truncations,
		r.CrashRestarts, r.WalRecovered, r.RecoveryResyncs,
		r.Promoted, r.FinalEpoch, r.Resyncs, r.MaxReplayLag,
		time.Duration(r.FailoverNs), r.DigestsConverged, r.TablesIdentical)
}

// Cluster-run failure modes.
var (
	ErrDiverged = errors.New("chaos: cluster members diverged at quiesce")
	ErrFailover = errors.New("chaos: cluster did not recover from primary kill")
	ErrRecovery = errors.New("chaos: primary crash-restart did not recover via WAL")
)

// gate is one member's reachability: both its replication feed and its
// client traffic fail while down, like a real network partition.
type gate struct{ down atomic.Bool }

var errUnreachable = errors.New("chaos: member unreachable (partitioned)")

// chaosSource wraps the current primary with the harness's failure
// injection. Every fetch round-trips through the wire codec; an armed
// corruption bit-flips the encoded batch mid-flight.
type chaosSource struct {
	mu          sync.Mutex
	target      cluster.Source
	gate        *gate
	feedDown    atomic.Bool // severs replication only, not client traffic
	corruptNext bool
	corrupted   int
	rng         *rand.Rand
}

func (cs *chaosSource) setTarget(s cluster.Source) {
	cs.mu.Lock()
	cs.target = s
	cs.mu.Unlock()
}

func (cs *chaosSource) current() (cluster.Source, error) {
	if cs.gate.down.Load() || cs.feedDown.Load() {
		return nil, errUnreachable
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.target, nil
}

func (cs *chaosSource) FetchState() (*cluster.State, error) {
	t, err := cs.current()
	if err != nil {
		return nil, err
	}
	st, err := t.FetchState()
	if err != nil {
		return nil, err
	}
	// Wire round trip: a routetabd replica would receive these bytes.
	var buf bytes.Buffer
	if err := cluster.EncodeState(&buf, st); err != nil {
		return nil, err
	}
	return cluster.DecodeState(&buf)
}

func (cs *chaosSource) FetchWAL(after uint64) (*cluster.WALBatch, error) {
	t, err := cs.current()
	if err != nil {
		return nil, err
	}
	b, err := t.FetchWAL(after)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := cluster.EncodeWALBatch(&buf, b); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	cs.mu.Lock()
	doCorrupt := cs.corruptNext && len(b.Records) > 0 && len(raw) > 0
	if doCorrupt {
		cs.corruptNext = false
		cs.corrupted++
		raw[cs.rng.Intn(len(raw))] ^= 1 << uint(cs.rng.Intn(8))
	}
	cs.mu.Unlock()
	decoded, err := cluster.DecodeWALBatch(bytes.NewReader(raw))
	if err != nil {
		if doCorrupt {
			// The codec caught the flip, as it must; surface it as
			// corruption so the replica falls back to a state fetch.
			return nil, fmt.Errorf("%w: injected wire corruption: %v", cluster.ErrBadRecord, err)
		}
		return nil, err
	}
	if doCorrupt {
		// The flip landed on a byte the codec provably cannot distinguish
		// (it reproduced identical records) or got lucky against CRC-32C —
		// astronomically unlikely; treat the fetch as clean.
		return decoded, nil
	}
	return decoded, nil
}

func (cs *chaosSource) FetchDigest() (cluster.Digest, error) {
	t, err := cs.current()
	if err != nil {
		return cluster.Digest{}, err
	}
	return t.FetchDigest()
}

// member is one cluster node as the router sees it.
type member struct {
	name string
	gate *gate
	srv  atomic.Pointer[serve.Server]
}

func (m *member) Name() string { return m.name }

// Lookup implements cluster.Backend: a partitioned or dead member is a
// transport error; everything else is the local server's answer.
func (m *member) Lookup(src, dst int) (serve.Result, error) {
	if m.gate.down.Load() {
		return serve.Result{}, errUnreachable
	}
	srv := m.srv.Load()
	if srv == nil {
		return serve.Result{}, errUnreachable
	}
	return srv.NextHop(src, dst), nil
}

// clusterHarness is one run's mutable state.
type clusterHarness struct {
	cfg     ClusterConfig
	srvOpts serve.ServerOptions
	grader

	primary  *cluster.Primary
	srv0     *serve.Server   // member-0's current server (replaced on restart)
	rep0     *serve.Repairer // member-0's current repairer
	members  []*member       // members[0] is the initial primary
	replicas []*cluster.Replica
	sources  []*chaosSource // per replica
	router   *cluster.Router
	inj      *faultinject.Injector

	// Member-0's durable WAL: a power-loss-modelling MemFS seen through a
	// fault-injecting wrapper the crash phase arms to tear one append.
	walFS    *faultinject.MemFS
	walFault *faultinject.FaultFS
	walLog   *cluster.Log

	churnDone       int
	partitions      int
	truncations     int
	promoted        bool
	failoverNs      int64
	maxLag          uint64
	crashRestarts   int
	walRecovered    bool
	recoveryResyncs uint64
}

// SetPeerDown implements faultinject.PeerTarget: peer i is replica i,
// severed from both its feed and its clients.
func (h *clusterHarness) SetPeerDown(peer int, isDown bool) error {
	if peer < 0 || peer >= len(h.replicas) {
		return fmt.Errorf("chaos: partition of unknown peer %d", peer)
	}
	h.members[peer+1].gate.down.Store(isDown)
	if isDown {
		h.partitions++
	}
	return nil
}

// SetLinkDown and SetNodeDown satisfy faultinject.Target (the partition plan
// contains only peer events, but the injector requires the base interface).
func (h *clusterHarness) SetLinkDown(u, v int, isDown bool) error {
	return h.primary.SetLinkDown(u, v, isDown)
}
func (h *clusterHarness) SetNodeDown(u int, isDown bool) error {
	return h.primary.SetNodeDown(u, isDown)
}

// RunCluster executes one cluster chaos run. The report is complete even on
// failure; the error names the broken invariant.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	cfg.setDefaults()
	if !serve.KnownScheme(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: unknown scheme %q", cfg.Scheme)
	}
	if !serve.IsShortestPath(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: scheme %q is not shortest-path; strict grading needs stretch 1", cfg.Scheme)
	}
	g, err := gengraph.GnHalf(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngine(g, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	srvOpts := serve.ServerOptions{Shards: 2, QueueCap: cfg.Workers * 4}
	srv := serve.NewServer(eng, srvOpts)
	rep := serve.NewRepairer(srv, serve.RepairOptions{})

	// Member-0 journals every publication to a durable WAL (fsync=always)
	// behind a fault-injection wrapper; the crash phase tears an append
	// mid-frame and restarts the primary cold over the surviving bytes.
	walFS := faultinject.NewMemFS()
	walFault, err := faultinject.NewFaultFS(walFS, faultinject.DiskFaultConfig{Seed: cfg.Seed})
	if err != nil {
		rep.Close()
		srv.Close()
		return nil, err
	}
	walLog, walRpt, err := cluster.RecoverPrimaryLog(eng, rep, cluster.RecoverConfig{Dir: "wal", FS: walFault})
	if err != nil {
		rep.Close()
		srv.Close()
		return nil, err
	}
	p, err := cluster.NewPrimaryAt(eng, srv, rep, walRpt.Epoch, walLog)
	if err != nil {
		rep.Close()
		srv.Close()
		return nil, err
	}

	h := &clusterHarness{cfg: cfg, srvOpts: srvOpts, primary: p, srv0: srv, rep0: rep,
		walFS: walFS, walFault: walFault, walLog: walLog}
	pm := &member{name: "member-0", gate: &gate{}}
	pm.srv.Store(srv)
	h.members = append(h.members, pm)

	for i := 0; i < cfg.Replicas; i++ {
		cs := &chaosSource{target: p, gate: &gate{}, rng: rand.New(rand.NewSource(cfg.Seed*7919 + int64(i)))}
		r, err := cluster.JoinReplica(cs, cluster.ReplicaOptions{
			Server:       srvOpts,
			SyncInterval: cfg.SyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: replica %d join: %w", i, err)
		}
		r.Start()
		rm := &member{name: fmt.Sprintf("member-%d", i+1), gate: cs.gate}
		rm.srv.Store(r.Server())
		h.replicas = append(h.replicas, r)
		h.sources = append(h.sources, cs)
		h.members = append(h.members, rm)
	}
	defer func() {
		for _, r := range h.replicas {
			r.Close()
		}
		h.primary.Close()
		_ = h.walLog.CloseWAL()
		h.rep0.Close()
		h.srv0.Close()
	}()

	backends := make([]cluster.Backend, len(h.members))
	for i, m := range h.members {
		backends[i] = m
	}
	h.router = cluster.NewRouter(backends, cluster.RouterOptions{
		HedgeAfter: 500 * time.Microsecond,
		ProbeAfter: 2 * time.Millisecond,
	})

	// Partition plan: every replica isolated once, healed PartitionHealAfter
	// ticks later, on a deterministic schedule.
	plan, err := faultinject.RandomPartitionPlan(faultinject.PartitionConfig{
		Peers:       cfg.Replicas,
		IsolateProb: 0.999, // isolate every replica exactly once
		Horizon:     max(cfg.Replicas, 1),
		HealAfter:   cfg.PartitionHealAfter,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h.inj, err = faultinject.New(faultinject.Config{Seed: cfg.Seed}, plan)
	if err != nil {
		return nil, err
	}
	h.inj.Bind(h)

	return h.drive()
}

// churn publishes one deterministic topology change through the primary:
// even rounds toggle an edge via Mutate, odd rounds run a link fail +
// repair-flush + heal cycle through the repairer (exercising RecLink
// shipping and overlay reconciliation on replicas).
func (h *clusterHarness) churn(round int) error {
	cur := h.primary.Engine().Current()
	edges := cur.Graph.Edges()
	if len(edges) == 0 {
		return errors.New("chaos: topology ran out of edges")
	}
	e := edges[(round*2654435761)%len(edges)]
	if round%2 == 0 {
		_, err := h.primary.Mutate(func(gr *graph.Graph) error {
			if gr.HasEdge(e[0], e[1]) {
				if err := gr.RemoveEdge(e[0], e[1]); err != nil {
					return err
				}
				if !gr.IsConnected() {
					return gr.AddEdge(e[0], e[1]) // keep connected: no-op round
				}
				return nil
			}
			return gr.AddEdge(e[0], e[1])
		})
		if err != nil {
			return err
		}
	} else {
		if err := h.primary.SetLinkDown(e[0], e[1], true); err != nil {
			return err
		}
		if err := h.primary.SetLinkDown(e[0], e[1], false); err != nil {
			return err
		}
	}
	h.churnDone++
	return nil
}

// sampleLag folds the replicas' current replay lag into the running max.
func (h *clusterHarness) sampleLag() {
	for _, r := range h.replicas {
		if _, _, lag := r.Stats(); lag > h.maxLag {
			h.maxLag = lag
		}
	}
}

// settle waits for every reachable replica to catch up with the current
// primary (bounded; convergence is verified for real at quiesce).
func (h *clusterHarness) settle(deadline time.Duration) {
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		h.sampleLag()
		pd, err := h.primary.FetchDigest()
		if err != nil {
			return
		}
		ok := true
		for i, r := range h.replicas {
			if h.sources[i].gate.down.Load() {
				continue
			}
			if r.Digest() != pd {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// buildPhases lays out the deterministic injection schedule: churn warmup,
// a partition + churn-under-partition + heal cycle per replica, a WAL
// corruption, a truncation under lag, the primary kill + promotion, then
// final churn on the new primary.
func (h *clusterHarness) buildPhases() []phase {
	var ps []phase
	round := 0
	nextChurn := func() int { r := round; round++; return r }

	churnN := func(k int) func() error {
		return func() error {
			for i := 0; i < k; i++ {
				if err := h.churn(nextChurn()); err != nil {
					return err
				}
			}
			h.sampleLag()
			return nil
		}
	}

	ps = append(ps, phase{name: "churn warmup", run: churnN(2)})

	// One injector tick per scheduled partition event; churn continues
	// while members are cut off, forcing real catch-up on heal.
	horizon := h.cfg.Replicas + h.cfg.PartitionHealAfter + 1
	for t := 0; t <= horizon; t++ {
		tick := t
		ps = append(ps, phase{name: fmt.Sprintf("partition tick %d", tick), run: func() error {
			if err := h.inj.AdvanceTo(tick); err != nil {
				return err
			}
			return churnN(1)()
		}})
	}
	ps = append(ps, phase{name: "heal partitions", run: func() error {
		if err := h.inj.Finish(); err != nil {
			return err
		}
		h.settle(2 * time.Second)
		return nil
	}})

	// Crash-restart must precede the truncation phase: a cold restart replays
	// the WAL from seq 1 over the initial topology, so the prefix must still
	// be on disk.
	if !h.cfg.SkipCrash {
		ps = append(ps, phase{name: "primary crash + WAL recovery", run: func() error {
			if err := h.crashRestart(churnN(1)); err != nil {
				return err
			}
			return churnN(1)()
		}})
	}

	for c := 0; c < h.cfg.Corruptions; c++ {
		idx := c % len(h.sources)
		ps = append(ps, phase{name: fmt.Sprintf("wal corruption replica %d", idx), run: func() error {
			h.sources[idx].mu.Lock()
			h.sources[idx].corruptNext = true
			h.sources[idx].mu.Unlock()
			if err := churnN(1)(); err != nil {
				return err
			}
			h.settle(2 * time.Second)
			return nil
		}})
	}

	for tr := 0; tr < h.cfg.Truncations; tr++ {
		ps = append(ps, phase{name: "wal truncation", run: func() error {
			if err := churnN(2)(); err != nil {
				return err
			}
			// Drop the whole log: any replica that has not pulled yet gets
			// ErrGone and must fall back to a state fetch.
			h.primary.Log().TruncateTo(h.primary.Log().LastSeq())
			h.truncations++
			h.settle(2 * time.Second)
			return nil
		}})
	}

	if !h.cfg.SkipKill {
		ps = append(ps, phase{name: "primary kill + promotion", run: h.killPromote})
	}

	ps = append(ps, phase{name: "final churn", run: func() error {
		if err := churnN(2)(); err != nil {
			return err
		}
		h.settle(2 * time.Second)
		return nil
	}})
	return ps
}

// crashRestart is the kill -9 phase: arm the WAL disk to tear the next
// append mid-frame, publish one churn round into the tear, kill the primary
// without any flush, then restart it cold over the surviving bytes. Recovery
// must resume the same epoch with a byte-identical table, and the replicas —
// severed from the feed for the instant of the crash, exactly like clients
// of a dying process — must catch up via WAL replay with zero full resyncs.
func (h *clusterHarness) crashRestart(tornChurn func() error) error {
	h.settle(2 * time.Second)
	preDigest, err := h.primary.FetchDigest()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRecovery, err)
	}
	pre := make([]uint64, len(h.replicas))
	for i, r := range h.replicas {
		_, pre[i], _ = r.Stats()
	}

	// Sever replication feeds (not client traffic): a record whose append is
	// about to tear must never be handed to a replica — in a real kill -9
	// the process dies before answering the next pull.
	for _, cs := range h.sources {
		cs.feedDown.Store(true)
	}
	h.walFault.CrashAt(h.walFault.WrittenBytes() + 6)
	if err := tornChurn(); err != nil {
		return fmt.Errorf("%w: churn into the tear: %v", ErrRecovery, err)
	}
	if !h.walFault.Crashed() {
		return fmt.Errorf("%w: armed disk crash did not fire", ErrRecovery)
	}

	// kill -9: clients lose member-0; nothing is flushed or finalised.
	h.members[0].gate.down.Store(true)
	oldEpoch := h.primary.Epoch()
	h.primary.Close()
	h.walLog.Abandon()
	h.rep0.Close()
	h.srv0.Close()

	// Cold restart over the same disk: the reboot heals the injected fault
	// (reads and writes work again) but not the torn bytes. Rebuild from the
	// initial topology input and recover the WAL forward.
	g, err := gengraph.GnHalf(h.cfg.N, rand.New(rand.NewSource(h.cfg.Seed)))
	if err != nil {
		return err
	}
	eng, err := serve.NewEngine(g, h.cfg.Scheme)
	if err != nil {
		return err
	}
	srv := serve.NewServer(eng, h.srvOpts)
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	log2, rpt, err := cluster.RecoverPrimaryLog(eng, rep, cluster.RecoverConfig{Dir: "wal", FS: h.walFS})
	if err != nil {
		rep.Close()
		srv.Close()
		return fmt.Errorf("%w: %v", ErrRecovery, err)
	}
	if rpt.EpochBumped || rpt.Epoch != oldEpoch {
		rep.Close()
		srv.Close()
		return fmt.Errorf("%w: epoch %d -> %d (bumped=%v): %s", ErrRecovery, oldEpoch, rpt.Epoch, rpt.EpochBumped, rpt.Reason)
	}
	np, err := cluster.NewPrimaryAt(eng, srv, rep, rpt.Epoch, log2)
	if err != nil {
		rep.Close()
		srv.Close()
		return err
	}
	postDigest, err := np.FetchDigest()
	if err == nil && postDigest != preDigest {
		err = fmt.Errorf("%w: digest %+v after recovery, want %+v", ErrRecovery, postDigest, preDigest)
	}
	if err != nil {
		np.Close()
		rep.Close()
		srv.Close()
		return err
	}

	h.primary = np
	h.walLog = log2
	h.srv0, h.rep0 = srv, rep
	h.members[0].srv.Store(srv)
	for _, cs := range h.sources {
		cs.setTarget(np)
		cs.feedDown.Store(false)
	}
	h.members[0].gate.down.Store(false)
	h.crashRestarts++
	h.walRecovered = true

	// Replicas must converge on the restarted primary via WAL replay alone.
	h.settle(2 * time.Second)
	for i, r := range h.replicas {
		_, rs, _ := r.Stats()
		if rs > pre[i] {
			h.recoveryResyncs += rs - pre[i]
		}
	}
	if h.recoveryResyncs > 0 {
		return fmt.Errorf("%w: %d full resyncs after restart", ErrRecovery, h.recoveryResyncs)
	}
	return nil
}

// killPromote kills the primary (unreachable to clients and replicas,
// publish hook detached), promotes replica 0 under a bumped epoch, points
// the surviving replicas at it, and measures kill → first routed answer
// after promotion as the failover latency.
func (h *clusterHarness) killPromote() error {
	start := time.Now()
	h.members[0].gate.down.Store(true)
	h.primary.Close()

	np, err := h.replicas[0].Promote()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFailover, err)
	}
	h.primary = np
	h.promoted = true
	// The promoted member's gate: reuse its member slot — it keeps serving
	// through its existing server, now as primary. Surviving replicas
	// re-point their feed (cluster membership change) and will observe the
	// epoch bump and resync.
	for i := 1; i < len(h.replicas); i++ {
		h.sources[i].setTarget(np)
	}
	// The dead member's backend stays down; the router steers around it.
	for {
		res, err := h.router.Lookup(1, 2)
		h.answered.Add(1)
		h.grade(&res)
		if err == nil && res.Err == nil {
			break
		}
		if time.Since(start) > 5*time.Second {
			return fmt.Errorf("%w: no routed answer %v after kill", ErrFailover, time.Since(start))
		}
		time.Sleep(100 * time.Microsecond)
	}
	h.failoverNs = time.Since(start).Nanoseconds()
	h.settle(2 * time.Second)
	return nil
}

// drive runs the routed closed-loop workers, fires phases at progress
// milestones, then quiesces and grades convergence.
func (h *clusterHarness) drive() (*ClusterReport, error) {
	cfg := h.cfg
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	var issued atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if issued.Add(1) > cfg.Lookups {
					halt()
					return
				}
				src := rng.Intn(cfg.N) + 1
				dst := rng.Intn(cfg.N-1) + 1
				if dst >= src {
					dst++
				}
				res, err := h.router.Lookup(src, dst)
				h.answered.Add(1)
				if err != nil {
					// Whole-cluster transport failure: graded as unavailable.
					h.unavailable.Add(1)
					continue
				}
				if b := h.grade(&res); b > 0 {
					if b > time.Millisecond {
						b = time.Millisecond
					}
					time.Sleep(b)
				}
			}
		}()
	}

	phases := h.buildPhases()
	ctlErr := make(chan error, 1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		total := len(phases)
		for k, ph := range phases {
			threshold := cfg.Lookups * uint64(k+1) / uint64(total+1)
			for h.answered.Load() < threshold {
				select {
				case <-stop:
				case <-time.After(100 * time.Microsecond):
					continue
				}
				break
			}
			if err := ph.run(); err != nil {
				select {
				case ctlErr <- fmt.Errorf("chaos cluster phase %q: %w", ph.name, err):
				default:
				}
				halt()
				return
			}
		}
	}()

	wg.Wait()
	halt()
	ctlWG.Wait()
	elapsed := time.Since(start)

	var phaseErr error
	select {
	case phaseErr = <-ctlErr:
	default:
	}

	// Quiesce: force every replica through a final sync against the current
	// primary, then compare digests and full packed matrices.
	for i, r := range h.replicas {
		h.sources[i].gate.down.Store(false)
		if h.promoted && i == 0 {
			continue // replica 0 is the primary now
		}
		_ = r.Sync()
	}
	h.settle(3 * time.Second)
	h.sampleLag()

	live := h.liveReplicas()
	converged, _, entErr := cluster.CheckEntropy(h.primary, live...)
	if entErr != nil && phaseErr == nil {
		phaseErr = entErr
	}
	identical := true
	want := h.primary.Engine().Current().Dist.Packed()
	for _, r := range live {
		if !bytes.Equal(r.Engine().Current().Dist.Packed(), want) {
			identical = false
		}
	}

	var resyncs uint64
	for _, r := range h.replicas {
		_, rs, _ := r.Stats()
		resyncs += rs
	}
	corruptions := 0
	for _, cs := range h.sources {
		cs.mu.Lock()
		corruptions += cs.corrupted
		cs.mu.Unlock()
	}

	rep := &ClusterReport{
		Scheme:             cfg.Scheme,
		N:                  cfg.N,
		Seed:               cfg.Seed,
		Members:            len(h.members),
		Lookups:            h.answered.Load(),
		Correct:            h.correct.Load(),
		Degraded:           h.degraded.Load(),
		Incorrect:          h.incorrect.Load(),
		Rejected:           h.rejected.Load(),
		Unavailable:        h.unavailable.Load(),
		Errored:            h.errored.Load(),
		ChurnRounds:        h.churnDone,
		Partitions:         h.partitions,
		Corruptions:        corruptions,
		Truncations:        h.truncations,
		Promoted:           h.promoted,
		FinalEpoch:         h.primary.Epoch(),
		Resyncs:            resyncs,
		MaxReplayLag:       h.maxLag,
		CrashRestarts:      h.crashRestarts,
		WalRecovered:       h.walRecovered,
		RecoveryResyncs:    h.recoveryResyncs,
		MaxDetourExtraHops: h.maxExtra.Load(),
		FailoverNs:         h.failoverNs,
		DigestsConverged:   converged,
		TablesIdentical:    identical,
		Elapsed:            elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Lookups) / elapsed.Seconds()
	}
	served := rep.Correct + rep.Degraded
	if rep.Lookups > 0 {
		rep.AvailabilityPct = 100 * float64(served) / float64(rep.Lookups)
	}
	for name, n := range h.router.Served() {
		ms := MemberStats{Name: name, Served: n}
		if elapsed > 0 {
			ms.QPS = float64(n) / elapsed.Seconds()
		}
		rep.PerMember = append(rep.PerMember, ms)
	}
	sortMembers(rep.PerMember)

	switch {
	case phaseErr != nil:
		return rep, phaseErr
	case rep.Incorrect > 0:
		return rep, fmt.Errorf("%w: %d of %d", ErrIncorrect, rep.Incorrect, rep.Lookups)
	case rep.MaxDetourExtraHops > 2:
		return rep, fmt.Errorf("%w: +%d hops", ErrDetourBudget, rep.MaxDetourExtraHops)
	case rep.Lookups > 0 && float64(rep.Lookups-served) > cfg.MaxUnavailableFrac*float64(rep.Lookups):
		return rep, fmt.Errorf("%w: %d of %d unserved (budget %.1f%%)",
			ErrBudget, rep.Lookups-served, rep.Lookups, 100*cfg.MaxUnavailableFrac)
	case !converged || !identical:
		return rep, fmt.Errorf("%w: digests converged=%v, tables identical=%v", ErrDiverged, converged, identical)
	case !cfg.SkipCrash && !rep.WalRecovered:
		return rep, ErrRecovery
	case !cfg.SkipKill && !rep.Promoted:
		return rep, ErrFailover
	}
	return rep, nil
}

// liveReplicas returns the replicas still following (excluding one promoted
// to primary).
func (h *clusterHarness) liveReplicas() []*cluster.Replica {
	var out []*cluster.Replica
	for i, r := range h.replicas {
		if h.promoted && i == 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortMembers(ms []MemberStats) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// ClusterCSVHeader is the docs/cluster artefact header row (EXPERIMENTS.md
// E16).
const ClusterCSVHeader = "scheme,n,seed,members,lookups,correct,degraded,rejected,unavailable,errored,incorrect,availability_pct,churn_rounds,partitions,corruptions,truncations,promoted,final_epoch,resyncs,max_replay_lag,failover_ns,digests_converged,tables_identical,qps"

// WriteClusterCSV renders cluster reports in the artefact layout.
func WriteClusterCSV(w io.Writer, reports []*ClusterReport) error {
	if _, err := fmt.Fprintln(w, ClusterCSVHeader); err != nil {
		return err
	}
	for _, r := range reports {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%v,%d,%d,%d,%d,%v,%v,%.0f\n",
			r.Scheme, r.N, r.Seed, r.Members, r.Lookups, r.Correct, r.Degraded, r.Rejected,
			r.Unavailable, r.Errored, r.Incorrect, r.AvailabilityPct, r.ChurnRounds, r.Partitions,
			r.Corruptions, r.Truncations, r.Promoted, r.FinalEpoch, r.Resyncs, r.MaxReplayLag,
			r.FailoverNs, r.DigestsConverged, r.TablesIdentical, r.QPS)
		if err != nil {
			return err
		}
	}
	return nil
}
