// Big-cluster chaos: the tables-tier counterpart of RunCluster. A 3-member
// landmark cluster serves a sparse topology sized past the all-pairs ceiling
// (default n=4096) while the harness injects the same replication failure
// modes as the full-tier harness — replica partitions from a seeded plan, a
// WAL corruption on the wire, a truncation under lag, and a primary kill
// recovered by promotion — with every member's answers spot-graded against
// on-demand BFS ground truth.
//
// Grading differs from RunCluster by necessity: there is no all-pairs matrix
// to grade against, and Result.Dist/NextDist are stretch-bounded estimates on
// this tier, so the strict NextDist==Dist−1 rule would flag correct answers.
// Instead each member carries its own spotgrade.Grader over its own engine —
// reachability, real-neighbour next hops, and route stretch ≤ 3 are asserted
// on the deterministic hash sample, and one violation fails the run. At
// quiesce, convergence is asserted first by anti-entropy digests (which on
// this tier fingerprint the encoded LMTB1 scheme tables) and then by
// comparing the encoded tables byte for byte — the tables-tier analogue of
// RunCluster's packed-matrix comparison.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/spotgrade"
)

// BigClusterConfig parameterises one tables-tier cluster chaos run.
type BigClusterConfig struct {
	// N is the sparse topology size (default 4096).
	N int
	// AvgDeg is the sparse topology's target average degree (default 8).
	AvgDeg float64
	// Seed keys the topology, query streams, churn, corruption, and the
	// partition plan.
	Seed int64
	// Replicas is how many followers join the primary (default 2 — a
	// 3-member cluster).
	Replicas int
	// Lookups is the total lookup target across workers (default 20_000).
	Lookups uint64
	// Workers is the closed-loop client count (default 4).
	Workers int
	// PartitionHealAfter is how many partition-plan ticks an isolated
	// replica stays cut off (default 2).
	PartitionHealAfter int
	// Corruptions is how many WAL fetches are bit-flipped on the wire
	// (default 1; each must end in a clean resync, never divergence).
	Corruptions int
	// Truncations is how many times the primary truncates its WAL under a
	// lagging replica, forcing an RTARENA2 full resync (default 1).
	Truncations int
	// SkipKill disables the primary kill + promotion phase.
	SkipKill bool
	// MaxUnavailableFrac bounds the tolerated unserved fraction (default
	// 0.02: rebuilds are ~100× heavier than at n=256, so partitions and the
	// kill window cost proportionally more).
	MaxUnavailableFrac float64
	// SyncInterval paces replica WAL pulls (default 1ms).
	SyncInterval time.Duration
	// SampleEvery grades ~1/SampleEvery of answers (default 1: grade all).
	SampleEvery int
}

func (c *BigClusterConfig) setDefaults() {
	if c.N < 8 {
		c.N = 4096
	}
	if c.AvgDeg <= 0 {
		c.AvgDeg = 8
	}
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.Lookups == 0 {
		c.Lookups = 20_000
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.PartitionHealAfter <= 0 {
		c.PartitionHealAfter = 2
	}
	if c.Corruptions < 0 {
		c.Corruptions = 0
	} else if c.Corruptions == 0 {
		c.Corruptions = 1
	}
	if c.Truncations < 0 {
		c.Truncations = 0
	} else if c.Truncations == 0 {
		c.Truncations = 1
	}
	if c.MaxUnavailableFrac <= 0 {
		c.MaxUnavailableFrac = 0.02
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = time.Millisecond
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
}

// BigClusterReport is one tables-tier cluster chaos run's graded outcome.
type BigClusterReport struct {
	N         int   `json:"n"`
	Seed      int64 `json:"seed"`
	Members   int   `json:"members"`
	Landmarks int   `json:"landmarks"`

	Lookups     uint64 `json:"lookups"`
	Served      uint64 `json:"served"`
	Rejected    uint64 `json:"rejected"`
	Unavailable uint64 `json:"unavailable"`
	Errored     uint64 `json:"errored"`

	SpotGraded          uint64 `json:"spot_graded"`
	SpotViolations      uint64 `json:"spot_violations"`
	SpotMaxStretchMilli int64  `json:"spot_max_stretch_milli"`

	ChurnRounds  int    `json:"churn_rounds"`
	Partitions   int    `json:"partitions"`
	Corruptions  int    `json:"corruptions"`
	Truncations  int    `json:"truncations"`
	Promoted     bool   `json:"promoted"`
	FinalEpoch   uint64 `json:"final_epoch"`
	Resyncs      uint64 `json:"resyncs"`
	MaxReplayLag uint64 `json:"max_replay_lag"`

	// Space figures: ResyncBytes is the encoded RTARENA2 state a joining or
	// resyncing member actually receives; MatrixBytes is the hypothetical
	// full-tier payload (the n² one-byte-per-pair packed matrix) the compact
	// tier exists to avoid shipping.
	SnapshotBytes int    `json:"snapshot_bytes"`
	ResyncBytes   int    `json:"resync_bytes"`
	MatrixBytes   uint64 `json:"matrix_bytes"`

	AvailabilityPct  float64       `json:"availability_pct"`
	FailoverNs       int64         `json:"failover_ns"`
	DigestsConverged bool          `json:"digests_converged"`
	TablesIdentical  bool          `json:"tables_identical"`
	PerMember        []MemberStats `json:"per_member"`
	Elapsed          time.Duration `json:"elapsed_ns"`
	QPS              float64       `json:"qps"`
}

// String renders the headline figures.
func (r *BigClusterReport) String() string {
	return fmt.Sprintf("bigcluster n=%d members=%d landmarks=%d: %d lookups (%.0f qps), %.3f%% available (served=%d rejected=%d unavailable=%d errored=%d), spot graded=%d violations=%d max stretch %.3f, %d churn rounds, %d partitions, %d corruptions, %d truncations, promoted=%v epoch=%d resyncs=%d lag≤%d, failover %v, resync %d B vs matrix %d B, digests converged=%v tables identical=%v",
		r.N, r.Members, r.Landmarks, r.Lookups, r.QPS, r.AvailabilityPct,
		r.Served, r.Rejected, r.Unavailable, r.Errored,
		r.SpotGraded, r.SpotViolations, float64(r.SpotMaxStretchMilli)/1000,
		r.ChurnRounds, r.Partitions, r.Corruptions, r.Truncations,
		r.Promoted, r.FinalEpoch, r.Resyncs, r.MaxReplayLag,
		time.Duration(r.FailoverNs), r.ResyncBytes, r.MatrixBytes,
		r.DigestsConverged, r.TablesIdentical)
}

// bigMember is one tables-tier cluster node as the router sees it, carrying
// its own spot grader: every non-errored answer it serves is observed against
// its own engine's ground truth, so replica staleness cannot cause false
// verdicts (the grader skips answers from a non-current snapshot).
type bigMember struct {
	name   string
	gate   *gate
	srv    atomic.Pointer[serve.Server]
	grader *spotgrade.Grader
}

func (m *bigMember) Name() string { return m.name }

// Lookup implements cluster.Backend.
func (m *bigMember) Lookup(src, dst int) (serve.Result, error) {
	if m.gate.down.Load() {
		return serve.Result{}, errUnreachable
	}
	srv := m.srv.Load()
	if srv == nil {
		return serve.Result{}, errUnreachable
	}
	res := srv.NextHop(src, dst)
	m.grader.Observe(src, dst, &res)
	return res, nil
}

// bigClusterHarness is one run's mutable state.
type bigClusterHarness struct {
	cfg     BigClusterConfig
	srvOpts serve.ServerOptions

	answered    atomic.Uint64
	served      atomic.Uint64
	rejected    atomic.Uint64
	unavailable atomic.Uint64
	errored     atomic.Uint64

	primary  *cluster.Primary
	srv0     *serve.Server
	members  []*bigMember // members[0] is the initial primary
	replicas []*cluster.Replica
	sources  []*chaosSource // per replica
	router   *cluster.Router
	inj      *faultinject.Injector

	// toggles are initially-absent edges cycled add/remove by churn; removing
	// an edge the harness itself added can never disconnect the topology,
	// which the landmark build would refuse.
	toggles [][2]int

	churnDone   int
	partitions  int
	truncations int
	promoted    bool
	failoverNs  int64
	maxLag      uint64
}

// SetPeerDown implements faultinject.PeerTarget: peer i is replica i, severed
// from both its feed and its clients.
func (h *bigClusterHarness) SetPeerDown(peer int, isDown bool) error {
	if peer < 0 || peer >= len(h.replicas) {
		return fmt.Errorf("chaos: partition of unknown peer %d", peer)
	}
	h.members[peer+1].gate.down.Store(isDown)
	if isDown {
		h.partitions++
	}
	return nil
}

// SetLinkDown and SetNodeDown satisfy faultinject.Target; the big harness's
// partition plan contains only peer events (topology churn goes through
// Mutate so spot grading stays strict), so these must never fire.
func (h *bigClusterHarness) SetLinkDown(u, v int, isDown bool) error {
	return fmt.Errorf("chaos: unexpected link fault (%d,%d) in bigcluster plan", u, v)
}
func (h *bigClusterHarness) SetNodeDown(u int, isDown bool) error {
	return fmt.Errorf("chaos: unexpected node fault %d in bigcluster plan", u)
}

// RunBigCluster executes one tables-tier cluster chaos run. The report is
// complete even on failure; the error names the broken invariant.
func RunBigCluster(cfg BigClusterConfig) (*BigClusterReport, error) {
	cfg.setDefaults()
	g, err := gengraph.SparseConnected(cfg.N, cfg.AvgDeg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		return nil, err
	}
	snap := eng.Current()
	size := snap.ArenaSize()
	if cfg.N >= 1024 && uint64(size)*2 >= uint64(cfg.N)*uint64(cfg.N) {
		return nil, fmt.Errorf("chaos: tables-tier snapshot is %d bytes for n=%d — not o(n²)", size, cfg.N)
	}

	h := &bigClusterHarness{cfg: cfg}
	h.srvOpts = serve.ServerOptions{Shards: 2, QueueCap: cfg.Workers * 4, StretchSampleEvery: -1}
	h.toggles = absentEdges(g, 8)
	if len(h.toggles) == 0 {
		return nil, errors.New("chaos: no absent edges to churn (topology is complete)")
	}

	srv := serve.NewServer(eng, h.srvOpts)
	p, err := cluster.NewPrimary(eng, srv, nil, 1)
	if err != nil {
		srv.Close()
		return nil, err
	}
	h.primary, h.srv0 = p, srv
	pm := &bigMember{name: "member-0", gate: &gate{},
		grader: spotgrade.New(eng, spotgrade.Config{Seed: cfg.Seed, SampleEvery: cfg.SampleEvery})}
	pm.srv.Store(srv)
	h.members = append(h.members, pm)

	for i := 0; i < cfg.Replicas; i++ {
		cs := &chaosSource{target: p, gate: &gate{}, rng: rand.New(rand.NewSource(cfg.Seed*7919 + int64(i)))}
		r, err := cluster.JoinReplica(cs, cluster.ReplicaOptions{
			Server:       h.srvOpts,
			SyncInterval: cfg.SyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: replica %d join: %w", i, err)
		}
		r.Start()
		rm := &bigMember{name: fmt.Sprintf("member-%d", i+1), gate: cs.gate,
			grader: spotgrade.New(r.Engine(), spotgrade.Config{Seed: cfg.Seed, SampleEvery: cfg.SampleEvery})}
		rm.srv.Store(r.Server())
		h.replicas = append(h.replicas, r)
		h.sources = append(h.sources, cs)
		h.members = append(h.members, rm)
	}
	defer func() {
		for _, r := range h.replicas {
			r.Close()
		}
		h.primary.Close()
		h.srv0.Close()
	}()

	backends := make([]cluster.Backend, len(h.members))
	for i, m := range h.members {
		backends[i] = m
	}
	h.router = cluster.NewRouter(backends, cluster.RouterOptions{
		HedgeAfter: 500 * time.Microsecond,
		ProbeAfter: 2 * time.Millisecond,
	})

	plan, err := faultinject.RandomPartitionPlan(faultinject.PartitionConfig{
		Peers:       cfg.Replicas,
		IsolateProb: 0.999, // isolate every replica exactly once
		Horizon:     max(cfg.Replicas, 1),
		HealAfter:   cfg.PartitionHealAfter,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h.inj, err = faultinject.New(faultinject.Config{Seed: cfg.Seed}, plan)
	if err != nil {
		return nil, err
	}
	h.inj.Bind(h)

	return h.drive()
}

// absentEdges returns up to k edges missing from g, each incident to a
// distinct low-numbered node — the churn toggle pool.
func absentEdges(g *graph.Graph, k int) [][2]int {
	var out [][2]int
	n := g.N()
	for u := 1; u <= n && len(out) < k; u++ {
		for w := u + 2; w <= n; w++ {
			if !g.HasEdge(u, w) {
				out = append(out, [2]int{u, w})
				break
			}
		}
	}
	return out
}

// churn publishes one deterministic topology change through the primary: the
// round's toggle edge is added if absent and removed if present. Every churn
// costs a full landmark rebuild on the primary and on each replica replaying
// the record — the heaviest thing a tables-tier cluster does.
func (h *bigClusterHarness) churn(round int) error {
	e := h.toggles[round%len(h.toggles)]
	_, err := h.primary.Mutate(func(gr *graph.Graph) error {
		if gr.HasEdge(e[0], e[1]) {
			return gr.RemoveEdge(e[0], e[1])
		}
		return gr.AddEdge(e[0], e[1])
	})
	if err != nil {
		return err
	}
	h.churnDone++
	return nil
}

// sampleLag folds the replicas' current replay lag into the running max.
func (h *bigClusterHarness) sampleLag() {
	for _, r := range h.replicas {
		if _, _, lag := r.Stats(); lag > h.maxLag {
			h.maxLag = lag
		}
	}
}

// settle waits for every reachable replica to catch up with the current
// primary (bounded; convergence is verified for real at quiesce). Tables-tier
// replays are full landmark rebuilds, so the deadline is generous.
func (h *bigClusterHarness) settle(deadline time.Duration) {
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		h.sampleLag()
		pd, err := h.primary.FetchDigest()
		if err != nil {
			return
		}
		ok := true
		for i, r := range h.replicas {
			if h.sources[i].gate.down.Load() {
				continue
			}
			if h.promoted && i == 0 {
				continue
			}
			if r.Digest() != pd {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// buildPhases lays out the deterministic injection schedule: churn warmup, a
// partition + churn-under-partition + heal cycle per replica, a WAL
// corruption, a truncation under lag, the primary kill + promotion, then
// final churn on the new primary.
func (h *bigClusterHarness) buildPhases() []phase {
	var ps []phase
	round := 0
	nextChurn := func() int { r := round; round++; return r }
	churnN := func(k int) func() error {
		return func() error {
			for i := 0; i < k; i++ {
				if err := h.churn(nextChurn()); err != nil {
					return err
				}
			}
			h.sampleLag()
			return nil
		}
	}

	ps = append(ps, phase{name: "churn warmup", run: churnN(1)})

	horizon := h.cfg.Replicas + h.cfg.PartitionHealAfter + 1
	for t := 0; t <= horizon; t++ {
		tick := t
		ps = append(ps, phase{name: fmt.Sprintf("partition tick %d", tick), run: func() error {
			if err := h.inj.AdvanceTo(tick); err != nil {
				return err
			}
			return churnN(1)()
		}})
	}
	ps = append(ps, phase{name: "heal partitions", run: func() error {
		if err := h.inj.Finish(); err != nil {
			return err
		}
		h.settle(10 * time.Second)
		return nil
	}})

	for c := 0; c < h.cfg.Corruptions; c++ {
		idx := c % len(h.sources)
		ps = append(ps, phase{name: fmt.Sprintf("wal corruption replica %d", idx), run: func() error {
			h.sources[idx].mu.Lock()
			h.sources[idx].corruptNext = true
			h.sources[idx].mu.Unlock()
			if err := churnN(1)(); err != nil {
				return err
			}
			h.settle(10 * time.Second)
			return nil
		}})
	}

	for tr := 0; tr < h.cfg.Truncations; tr++ {
		ps = append(ps, phase{name: "wal truncation", run: func() error {
			if err := churnN(1)(); err != nil {
				return err
			}
			// Drop the whole log: any replica that has not pulled yet gets
			// ErrGone and must fall back to an RTARENA2 state fetch.
			h.primary.Log().TruncateTo(h.primary.Log().LastSeq())
			h.truncations++
			h.settle(10 * time.Second)
			return nil
		}})
	}

	if !h.cfg.SkipKill {
		ps = append(ps, phase{name: "primary kill + promotion", run: h.killPromote})
	}

	ps = append(ps, phase{name: "final churn", run: func() error {
		if err := churnN(1)(); err != nil {
			return err
		}
		h.settle(10 * time.Second)
		return nil
	}})
	return ps
}

// tally grades one routed lookup's transport/availability outcome; answer
// correctness is the per-member spot graders' job.
func (h *bigClusterHarness) tally(res serve.Result, err error) time.Duration {
	h.answered.Add(1)
	if err != nil {
		h.unavailable.Add(1)
		return 0
	}
	var oe *serve.OverloadedError
	switch {
	case errors.As(res.Err, &oe):
		h.rejected.Add(1)
		return oe.RetryAfter
	case errors.Is(res.Err, serve.ErrOverloaded), errors.Is(res.Err, serve.ErrClosed):
		h.rejected.Add(1)
		return 500 * time.Microsecond
	case errors.Is(res.Err, serve.ErrUnavailable):
		h.unavailable.Add(1)
	case res.Err != nil:
		h.errored.Add(1)
	default:
		h.served.Add(1)
	}
	return 0
}

// killPromote kills the primary (unreachable to clients and replicas, publish
// hook detached), promotes replica 0 under a bumped epoch, points the
// surviving replicas at it, and measures kill → first routed answer after
// promotion as the failover latency.
func (h *bigClusterHarness) killPromote() error {
	h.settle(10 * time.Second)
	start := time.Now()
	h.members[0].gate.down.Store(true)
	h.primary.Close()

	np, err := h.replicas[0].Promote()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFailover, err)
	}
	h.primary = np
	h.promoted = true
	for i := 1; i < len(h.replicas); i++ {
		h.sources[i].setTarget(np)
	}
	for {
		res, err := h.router.Lookup(1, 2)
		h.tally(res, err)
		if err == nil && res.Err == nil {
			break
		}
		if time.Since(start) > 10*time.Second {
			return fmt.Errorf("%w: no routed answer %v after kill", ErrFailover, time.Since(start))
		}
		time.Sleep(100 * time.Microsecond)
	}
	h.failoverNs = time.Since(start).Nanoseconds()
	h.settle(10 * time.Second)
	return nil
}

// drive runs the routed closed-loop workers, fires phases at progress
// milestones, then quiesces and grades convergence.
func (h *bigClusterHarness) drive() (*BigClusterReport, error) {
	cfg := h.cfg
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	var issued atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if issued.Add(1) > cfg.Lookups {
					halt()
					return
				}
				src := rng.Intn(cfg.N) + 1
				dst := rng.Intn(cfg.N-1) + 1
				if dst >= src {
					dst++
				}
				res, err := h.router.Lookup(src, dst)
				if b := h.tally(res, err); b > 0 {
					if b > time.Millisecond {
						b = time.Millisecond
					}
					time.Sleep(b)
				}
			}
		}()
	}

	phases := h.buildPhases()
	ctlErr := make(chan error, 1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		total := len(phases)
		for k, ph := range phases {
			threshold := cfg.Lookups * uint64(k+1) / uint64(total+1)
			for h.answered.Load() < threshold {
				select {
				case <-stop:
				case <-time.After(100 * time.Microsecond):
					continue
				}
				break
			}
			if err := ph.run(); err != nil {
				select {
				case ctlErr <- fmt.Errorf("chaos bigcluster phase %q: %w", ph.name, err):
				default:
				}
				halt()
				return
			}
		}
	}()

	wg.Wait()
	halt()
	ctlWG.Wait()
	elapsed := time.Since(start)

	var phaseErr error
	select {
	case phaseErr = <-ctlErr:
	default:
	}

	// Quiesce: force every replica through a final sync against the current
	// primary, then compare digests and the encoded scheme tables themselves.
	for i, r := range h.replicas {
		h.sources[i].gate.down.Store(false)
		if h.promoted && i == 0 {
			continue // replica 0 is the primary now
		}
		_ = r.Sync()
	}
	h.settle(15 * time.Second)
	h.sampleLag()

	live := h.liveReplicas()
	converged, _, entErr := cluster.CheckEntropy(h.primary, live...)
	if entErr != nil && phaseErr == nil {
		phaseErr = entErr
	}
	identical := true
	finalSnap := h.primary.Engine().Current()
	want := finalSnap.TablesBytes()
	for _, r := range live {
		if !bytes.Equal(r.Engine().Current().TablesBytes(), want) {
			identical = false
		}
	}

	var resyncs uint64
	for _, r := range h.replicas {
		_, rs, _ := r.Stats()
		resyncs += rs
	}
	corruptions := 0
	for _, cs := range h.sources {
		cs.mu.Lock()
		corruptions += cs.corrupted
		cs.mu.Unlock()
	}
	var spotGraded, spotViolations uint64
	var spotMax int64
	var firstSpotErr error
	for _, m := range h.members {
		spotGraded += m.grader.Graded()
		spotViolations += m.grader.Violations()
		if ms := m.grader.MaxStretchMilli(); ms > spotMax {
			spotMax = ms
		}
		if firstSpotErr == nil {
			firstSpotErr = m.grader.Err()
		}
	}

	// Resync economics: what a joining member receives on this tier versus
	// what a full-tier resync at the same n would have to ship.
	resyncBytes := 0
	if st, err := h.primary.FetchState(); err == nil {
		var buf bytes.Buffer
		if cluster.EncodeState(&buf, st) == nil {
			resyncBytes = buf.Len()
		}
	}

	rep := &BigClusterReport{
		N:                   cfg.N,
		Seed:                cfg.Seed,
		Members:             len(h.members),
		Lookups:             h.answered.Load(),
		Served:              h.served.Load(),
		Rejected:            h.rejected.Load(),
		Unavailable:         h.unavailable.Load(),
		Errored:             h.errored.Load(),
		SpotGraded:          spotGraded,
		SpotViolations:      spotViolations,
		SpotMaxStretchMilli: spotMax,
		ChurnRounds:         h.churnDone,
		Partitions:          h.partitions,
		Corruptions:         corruptions,
		Truncations:         h.truncations,
		Promoted:            h.promoted,
		FinalEpoch:          h.primary.Epoch(),
		Resyncs:             resyncs,
		MaxReplayLag:        h.maxLag,
		SnapshotBytes:       finalSnap.ArenaSize(),
		ResyncBytes:         resyncBytes,
		MatrixBytes:         uint64(cfg.N) * uint64(cfg.N),
		FailoverNs:          h.failoverNs,
		DigestsConverged:    converged,
		TablesIdentical:     identical,
		Elapsed:             elapsed,
	}
	if lm, ok := finalSnap.SchemeImpl().(interface{ K() int }); ok {
		rep.Landmarks = lm.K()
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Lookups) / elapsed.Seconds()
	}
	if rep.Lookups > 0 {
		rep.AvailabilityPct = 100 * float64(rep.Served) / float64(rep.Lookups)
	}
	for name, n := range h.router.Served() {
		ms := MemberStats{Name: name, Served: n}
		if elapsed > 0 {
			ms.QPS = float64(n) / elapsed.Seconds()
		}
		rep.PerMember = append(rep.PerMember, ms)
	}
	sortMembers(rep.PerMember)

	switch {
	case phaseErr != nil:
		return rep, phaseErr
	case rep.SpotViolations > 0:
		return rep, fmt.Errorf("%w: %v", ErrIncorrect, firstSpotErr)
	case rep.SpotGraded == 0:
		return rep, fmt.Errorf("chaos: no answers were spot-graded (lookups=%d)", rep.Lookups)
	case rep.Lookups > 0 && float64(rep.Lookups-rep.Served) > cfg.MaxUnavailableFrac*float64(rep.Lookups):
		return rep, fmt.Errorf("%w: %d of %d unserved (budget %.1f%%)",
			ErrBudget, rep.Lookups-rep.Served, rep.Lookups, 100*cfg.MaxUnavailableFrac)
	case !converged || !identical:
		return rep, fmt.Errorf("%w: digests converged=%v, tables identical=%v", ErrDiverged, converged, identical)
	case !cfg.SkipKill && !rep.Promoted:
		return rep, ErrFailover
	}
	return rep, nil
}

// liveReplicas returns the replicas still following (excluding one promoted
// to primary).
func (h *bigClusterHarness) liveReplicas() []*cluster.Replica {
	var out []*cluster.Replica
	for i, r := range h.replicas {
		if h.promoted && i == 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}

// BigClusterCSVHeader is the docs/bigcluster artefact header row
// (EXPERIMENTS.md E20).
const BigClusterCSVHeader = "n,seed,members,landmarks,lookups,served,rejected,unavailable,errored,availability_pct,spot_graded,spot_violations,spot_max_stretch_milli,churn_rounds,partitions,corruptions,truncations,promoted,final_epoch,resyncs,max_replay_lag,failover_ns,snapshot_bytes,resync_bytes,matrix_bytes,digests_converged,tables_identical,qps"

// WriteBigClusterCSV renders bigcluster reports in the artefact layout.
func WriteBigClusterCSV(w io.Writer, reports []*BigClusterReport) error {
	if _, err := fmt.Fprintln(w, BigClusterCSVHeader); err != nil {
		return err
	}
	for _, r := range reports {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%v,%d,%d,%d,%d,%d,%d,%d,%v,%v,%.0f\n",
			r.N, r.Seed, r.Members, r.Landmarks, r.Lookups, r.Served, r.Rejected,
			r.Unavailable, r.Errored, r.AvailabilityPct, r.SpotGraded, r.SpotViolations,
			r.SpotMaxStretchMilli, r.ChurnRounds, r.Partitions, r.Corruptions, r.Truncations,
			r.Promoted, r.FinalEpoch, r.Resyncs, r.MaxReplayLag, r.FailoverNs,
			r.SnapshotBytes, r.ResyncBytes, r.MatrixBytes,
			r.DigestsConverged, r.TablesIdentical, r.QPS)
		if err != nil {
			return err
		}
	}
	return nil
}
