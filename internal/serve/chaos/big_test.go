package chaos

import "testing"

// TestRunBigSmallScale: the full large-graph harness — sparse topology,
// tables-tier landmark build, spot-graded closed loop with hot swaps — at a
// size small enough for the race detector.
func TestRunBigSmallScale(t *testing.T) {
	rep, err := RunBig(BigConfig{N: 256, Seed: 17, Lookups: 3_000, Workers: 2, Swaps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Landmarks < 2 {
		t.Fatalf("landmarks = %d", rep.Landmarks)
	}
	if rep.Load.SpotGraded == 0 || rep.Load.SpotViolations != 0 {
		t.Fatalf("spot grading: graded=%d violations=%d", rep.Load.SpotGraded, rep.Load.SpotViolations)
	}
	if rep.Load.SpotMaxStretchMilli > 3000 {
		t.Fatalf("max stretch %d over bound", rep.Load.SpotMaxStretchMilli)
	}
	if uint64(rep.SnapshotBytes) >= uint64(rep.N)*uint64(rep.N) {
		t.Fatalf("snapshot %d bytes is not sub-n² at n=%d", rep.SnapshotBytes, rep.N)
	}
}
