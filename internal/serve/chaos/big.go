package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/loadgen"
	"routetab/internal/serve/spotgrade"
)

// BigConfig parameterises a large-graph serving run: a sparse seeded topology
// sized past the all-pairs ceiling, served from a tables-tier landmark
// snapshot and spot-graded against on-demand BFS ground truth.
type BigConfig struct {
	// N is the topology size (default 4096).
	N int
	// AvgDeg is the sparse topology's target average degree (default 8).
	AvgDeg float64
	// Seed keys the topology, the query streams, and the spot sample.
	Seed int64
	// Lookups is the total lookup target across workers (default 10_000).
	Lookups uint64
	// Workers is the closed-loop client count (default 4).
	Workers int
	// Swaps is how many hot topology swaps fire mid-load (default 2). Each
	// toggles an initially-absent edge, so connectivity is never at risk.
	Swaps int
	// SampleEvery grades ~1/SampleEvery of answers (default 1: grade all).
	SampleEvery int
}

func (c *BigConfig) setDefaults() {
	if c.N < 8 {
		c.N = 4096
	}
	if c.AvgDeg <= 0 {
		c.AvgDeg = 8
	}
	if c.Lookups == 0 {
		c.Lookups = 10_000
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
}

// BigReport is one large-graph run's outcome.
type BigReport struct {
	N             int           `json:"n"`
	Landmarks     int           `json:"landmarks"`
	BuildTime     time.Duration `json:"build_ns"`
	SnapshotBytes int           `json:"snapshot_bytes"`
	BytesPerNode  float64       `json:"bytes_per_node"`
	Load          *loadgen.Report
}

// String renders the headline figures.
func (r *BigReport) String() string {
	return fmt.Sprintf("big n=%d: %d landmarks, build %v, snapshot %d B (%.0f B/node); %d lookups, %d spot-graded, %d violations, max stretch %.3f",
		r.N, r.Landmarks, r.BuildTime.Round(time.Millisecond), r.SnapshotBytes, r.BytesPerNode,
		r.Load.Lookups, r.Load.SpotGraded, r.Load.SpotViolations,
		float64(r.Load.SpotMaxStretchMilli)/1000)
}

// RunBig builds a tables-tier landmark engine over a sparse seeded topology
// of cfg.N nodes, serves a seeded closed-loop workload with hot swaps, and
// spot-grades answers for reachability, neighbourship, and stretch ≤ 3. It
// errors if the snapshot is not o(n²) (the whole point of the tier), if
// nothing was graded, or if any graded answer broke the contract.
func RunBig(cfg BigConfig) (*BigReport, error) {
	cfg.setDefaults()
	g, err := gengraph.SparseConnected(cfg.N, cfg.AvgDeg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		return nil, err
	}
	build := time.Since(t0)
	snap := eng.Current()
	size := snap.ArenaSize()
	// Asymptotic space gate: below ~1024 nodes the fixed graph/ports sections
	// dominate and the ratio is meaningless.
	if cfg.N >= 1024 && uint64(size)*2 >= uint64(cfg.N)*uint64(cfg.N) {
		return nil, fmt.Errorf("chaos: tables-tier snapshot is %d bytes for n=%d — not o(n²)", size, cfg.N)
	}

	// The hot-swap edge: initially absent, toggled add/remove, so the graph
	// stays connected through every swap (removing an edge we added cannot
	// disconnect; landmark builds reject disconnected topologies).
	u, v := 1, 0
	for w := 3; w <= cfg.N; w++ {
		if !g.HasEdge(u, w) {
			v = w
			break
		}
	}
	swap := func() error {
		_, err := eng.Mutate(func(g *graph.Graph) error {
			if g.HasEdge(u, v) {
				return g.RemoveEdge(u, v)
			}
			return g.AddEdge(u, v)
		})
		return err
	}
	if v == 0 {
		swap = nil // complete graph around node 1; skip swaps
	}

	srv := serve.NewServer(eng, serve.ServerOptions{StretchSampleEvery: -1})
	defer srv.Close()
	grader := spotgrade.New(eng, spotgrade.Config{Seed: cfg.Seed, SampleEvery: cfg.SampleEvery})
	lrep, err := loadgen.Run(srv, loadgen.Config{
		Workers:  cfg.Workers,
		Lookups:  cfg.Lookups,
		Seed:     cfg.Seed,
		Validate: loadgen.ValidateSpot,
		Spot:     grader,
		HotSwaps: cfg.Swaps,
		SwapFn:   swap,
	})
	if err != nil {
		return nil, err
	}
	if lrep.SpotGraded == 0 {
		return nil, fmt.Errorf("chaos: no answers were spot-graded (lookups=%d)", lrep.Lookups)
	}

	rep := &BigReport{
		N:             cfg.N,
		BuildTime:     build,
		SnapshotBytes: size,
		BytesPerNode:  float64(size) / float64(cfg.N),
		Load:          lrep,
	}
	if lm, ok := snap.SchemeImpl().(interface{ K() int }); ok {
		rep.Landmarks = lm.K()
	}
	return rep, nil
}
