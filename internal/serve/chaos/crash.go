// Crash harness: the `make crash` gate. Two sweeps, both deterministic:
//
//  1. A store-level byte matrix — append a recorded schedule to a durable WAL
//     over the power-loss-modelling MemFS, then for EVERY byte the disk could
//     have absorbed before power failed, clone the disk torn at that byte,
//     recover, and assert the recovered log is exactly the durable prefix of
//     the schedule (never a torn record, never a lost durable one).
//
//  2. An engine-digest record matrix — a reference primary journals a churn
//     schedule under fsync=always while the harness records the disk offset
//     and anti-entropy digest at every record boundary; then for each
//     boundary (clean, and torn three bytes into the next frame) a cold
//     primary is rebuilt from the initial topology over the cloned disk, and
//     its recovered table must be byte-identical (digest-equal, same epoch)
//     to the reference at that boundary.
//
// Together they are the executable form of the durability model (DESIGN.md
// §13): whatever instant the power fails, recovery yields the exact durable
// prefix — same epoch, same bytes — so replicas replay forward, never resync.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/cluster/walstore"
	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

// CrashConfig parameterises one crash-recovery sweep.
type CrashConfig struct {
	// N is the topology size for the engine matrix (default 24).
	N int
	// Seed keys topology, schedules, and payloads.
	Seed int64
	// Scheme must be shortest-path (default "fulltable").
	Scheme string
	// Records is the engine-matrix churn schedule length (default 16; each
	// publishes one WAL record, checked clean and torn).
	Records int
	// ByteRecords is the store-level byte-matrix schedule length (default
	// 30; every byte boundary of the resulting disk image is checked).
	ByteRecords int
}

func (c *CrashConfig) setDefaults() {
	if c.N < 8 {
		c.N = 24
	}
	if c.Scheme == "" {
		c.Scheme = "fulltable"
	}
	if c.Records <= 0 {
		c.Records = 16
	}
	if c.ByteRecords <= 0 {
		c.ByteRecords = 30
	}
}

// CrashReport is one sweep's outcome.
type CrashReport struct {
	Scheme string `json:"scheme"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`

	ByteRecords    int   `json:"byte_records"`    // records in the byte-matrix schedule
	ByteBoundaries int64 `json:"byte_boundaries"` // crash points checked (one per disk byte)
	ByteSegments   int   `json:"byte_segments"`   // segment files the schedule spanned

	RecordBoundaries int `json:"record_boundaries"` // clean record-boundary restarts
	TornBoundaries   int `json:"torn_boundaries"`   // mid-frame torn restarts
	Replayed         int `json:"replayed"`          // WAL records replayed across all restarts

	EpochPreserved   bool          `json:"epoch_preserved"`
	DigestsIdentical bool          `json:"digests_identical"`
	Elapsed          time.Duration `json:"elapsed_ns"`
}

// String renders the headline figures.
func (r *CrashReport) String() string {
	return fmt.Sprintf("crash %s n=%d seed=%d: byte matrix %d records / %d boundaries / %d segments; engine matrix %d clean + %d torn restarts (%d records replayed), epoch preserved=%v digests identical=%v, %v",
		r.Scheme, r.N, r.Seed, r.ByteRecords, r.ByteBoundaries, r.ByteSegments,
		r.RecordBoundaries, r.TornBoundaries, r.Replayed,
		r.EpochPreserved, r.DigestsIdentical, r.Elapsed.Round(time.Millisecond))
}

// ErrCrashMatrix is returned when any crash point recovers to the wrong state.
var ErrCrashMatrix = errors.New("chaos: crash matrix violation")

// RunCrash executes both sweeps. The report is complete even on failure; the
// error names the first violated boundary.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	cfg.setDefaults()
	if !serve.KnownScheme(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: unknown scheme %q", cfg.Scheme)
	}
	rep := &CrashReport{Scheme: cfg.Scheme, N: cfg.N, Seed: cfg.Seed, ByteRecords: cfg.ByteRecords}
	start := time.Now()
	if err := byteMatrix(cfg, rep); err != nil {
		rep.Elapsed = time.Since(start)
		return rep, err
	}
	err := engineMatrix(cfg, rep)
	rep.Elapsed = time.Since(start)
	if err == nil {
		rep.EpochPreserved = true
		rep.DigestsIdentical = true
	}
	return rep, err
}

// byteMatrix is sweep 1: every byte of a recorded multi-segment schedule.
func byteMatrix(cfg CrashConfig, rep *CrashReport) error {
	ref := faultinject.NewMemFS()
	st, err := walstore.Open("wal", walstore.Options{FS: ref, SegmentBytes: 300})
	if err != nil {
		return err
	}
	if err := st.SetEpoch(1); err != nil {
		return err
	}
	payload := func(i int) []byte {
		n := 1 + (i*37)%53
		b := make([]byte, n)
		x := faultinject.Mix64(uint64(cfg.Seed) ^ uint64(i)*0x9E3779B97F4A7C15)
		for j := range b {
			x = faultinject.Mix64(x)
			b[j] = byte(x)
		}
		return b
	}
	endAt := make([]int64, cfg.ByteRecords)
	for i := 0; i < cfg.ByteRecords; i++ {
		if err := st.Append(uint64(i+1), payload(i)); err != nil {
			return err
		}
		endAt[i] = ref.JournalBytes()
	}
	total := ref.JournalBytes()
	names, err := ref.ReadDir("wal")
	if err != nil {
		return err
	}
	rep.ByteSegments = len(names)
	rep.ByteBoundaries = total + 1
	for k := int64(0); k <= total; k++ {
		rst, err := walstore.Open("wal", walstore.Options{FS: ref.CrashClone(k)})
		if err != nil {
			return fmt.Errorf("%w: byte %d: recovery failed: %v", ErrCrashMatrix, k, err)
		}
		want := 0
		for want < cfg.ByteRecords && endAt[want] <= k {
			want++
		}
		next := uint64(1)
		err = rst.Replay(0, func(seq uint64, p []byte) error {
			if seq != next {
				return fmt.Errorf("gap: got seq %d, want %d", seq, next)
			}
			ref := payload(int(seq - 1))
			if len(p) != len(ref) {
				return fmt.Errorf("seq %d: %d bytes, want %d", seq, len(p), len(ref))
			}
			for j := range p {
				if p[j] != ref[j] {
					return fmt.Errorf("seq %d diverges at byte %d", seq, j)
				}
			}
			next++
			return nil
		})
		if err != nil {
			return fmt.Errorf("%w: byte %d: %v", ErrCrashMatrix, k, err)
		}
		if got := int(next - 1); got != want {
			return fmt.Errorf("%w: byte %d: recovered %d records, want %d", ErrCrashMatrix, k, got, want)
		}
	}
	return nil
}

// engineMatrix is sweep 2: cold primary restarts at every record boundary.
func engineMatrix(cfg CrashConfig, rep *CrashReport) error {
	if !serve.IsShortestPath(cfg.Scheme) {
		return fmt.Errorf("chaos: scheme %q is not shortest-path", cfg.Scheme)
	}
	ref := faultinject.NewMemFS()
	p, err := crashStack(cfg, ref)
	if err != nil {
		return err
	}
	// Record boundaries: offs[i] is the disk image after record i is durable,
	// digests[i] the table the cluster serves at that instant. Index 0 is the
	// fresh primary before any churn.
	offs := make([]int64, cfg.Records+1)
	digests := make([]cluster.Digest, cfg.Records+1)
	offs[0] = ref.JournalBytes()
	if digests[0], err = p.p.FetchDigest(); err != nil {
		return err
	}
	for i := 1; i <= cfg.Records; i++ {
		if err := crashChurn(p.p, i); err != nil {
			return err
		}
		offs[i] = ref.JournalBytes()
		if digests[i], err = p.p.FetchDigest(); err != nil {
			return err
		}
	}
	p.close(true) // kill -9: abandon, never seal

	check := func(budget int64, wantDigest cluster.Digest, label string) error {
		clone := ref.CrashClone(budget)
		rp, err := crashStack(cfg, clone)
		if err != nil {
			return fmt.Errorf("%w: %s: restart: %v", ErrCrashMatrix, label, err)
		}
		defer rp.close(false)
		if rp.rpt.EpochBumped || rp.rpt.Epoch != 1 {
			return fmt.Errorf("%w: %s: epoch %d (bumped=%v): %s", ErrCrashMatrix, label, rp.rpt.Epoch, rp.rpt.EpochBumped, rp.rpt.Reason)
		}
		got, err := rp.p.FetchDigest()
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCrashMatrix, label, err)
		}
		if got != wantDigest {
			return fmt.Errorf("%w: %s: recovered digest %+v, want %+v", ErrCrashMatrix, label, got, wantDigest)
		}
		rep.Replayed += rp.rpt.Replayed
		return nil
	}
	for i := 0; i <= cfg.Records; i++ {
		if err := check(offs[i], digests[i], fmt.Sprintf("record %d clean", i)); err != nil {
			return err
		}
		rep.RecordBoundaries++
		if i < cfg.Records {
			// Three bytes into the next frame (or next segment header): the
			// torn write must vanish and recovery must land on boundary i.
			if err := check(offs[i]+3, digests[i], fmt.Sprintf("record %d torn", i)); err != nil {
				return err
			}
			rep.TornBoundaries++
		}
	}
	return nil
}

// crashPrimary bundles one primary stack for the engine matrix.
type crashPrimary struct {
	p   *cluster.Primary
	log *cluster.Log
	rpt *cluster.RecoveryReport
	srv *serve.Server
	rep *serve.Repairer
}

func (cp *crashPrimary) close(abandon bool) {
	if abandon {
		cp.log.Abandon()
	} else {
		_ = cp.log.CloseWAL()
	}
	cp.p.Close()
	cp.rep.Close()
	cp.srv.Close()
}

// crashStack cold-builds a primary from the seed topology and recovers the
// WAL directory on fs.
func crashStack(cfg CrashConfig, fs faultinject.FS) (*crashPrimary, error) {
	g, err := gengraph.GnHalf(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngine(g, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	rep := serve.NewRepairer(srv, serve.RepairOptions{Debounce: -1})
	log, rpt, err := cluster.RecoverPrimaryLog(eng, rep, cluster.RecoverConfig{Dir: "wal", FS: fs})
	if err != nil {
		rep.Close()
		srv.Close()
		return nil, err
	}
	p, err := cluster.NewPrimaryAt(eng, srv, rep, rpt.Epoch, log)
	if err != nil {
		rep.Close()
		srv.Close()
		return nil, err
	}
	return &crashPrimary{p: p, log: log, rpt: rpt, srv: srv, rep: rep}, nil
}

// crashChurn publishes exactly one WAL record: a connectivity-safe edge
// toggle keyed by the round.
func crashChurn(p *cluster.Primary, round int) error {
	cur := p.Engine().Current()
	edges := cur.Graph.Edges()
	if len(edges) == 0 {
		return errors.New("chaos: topology ran out of edges")
	}
	e := edges[(round*2654435761)%len(edges)]
	_, err := p.Mutate(func(gr *graph.Graph) error {
		if gr.HasEdge(e[0], e[1]) {
			if err := gr.RemoveEdge(e[0], e[1]); err != nil {
				return err
			}
			if !gr.IsConnected() {
				return gr.AddEdge(e[0], e[1])
			}
			return nil
		}
		return gr.AddEdge(e[0], e[1])
	})
	return err
}
