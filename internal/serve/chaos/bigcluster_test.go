package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunBigClusterSmall is the deterministic tier-1 gate for the tables-tier
// cluster harness at a CI-friendly n: partitions, a WAL corruption, a
// truncation, and a primary kill + promotion must all resolve with zero spot
// violations and byte-identical scheme tables at quiesce. The n=4096 run is
// the `make bigcluster` gate.
func TestRunBigClusterSmall(t *testing.T) {
	cfg := BigClusterConfig{
		N:        192,
		Seed:     7,
		Replicas: 2,
		Lookups:  6_000,
		Workers:  3,
	}
	rep, err := RunBigCluster(cfg)
	if err != nil {
		t.Fatalf("bigcluster chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.SpotViolations != 0 {
		t.Fatalf("spot violations: %d", rep.SpotViolations)
	}
	if rep.SpotGraded == 0 {
		t.Fatalf("no answers spot-graded (lookups=%d)", rep.Lookups)
	}
	if rep.SpotMaxStretchMilli > 3000 {
		t.Errorf("max stretch %.3f exceeds the scheme bound 3", float64(rep.SpotMaxStretchMilli)/1000)
	}
	if rep.Members != 3 {
		t.Errorf("members = %d, want 3", rep.Members)
	}
	if rep.Landmarks == 0 {
		t.Errorf("landmark count not reported")
	}
	if rep.Partitions < cfg.Replicas {
		t.Errorf("partitions injected = %d, want ≥ %d", rep.Partitions, cfg.Replicas)
	}
	if rep.Corruptions != 1 {
		t.Errorf("corruptions injected = %d, want 1", rep.Corruptions)
	}
	if rep.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", rep.Truncations)
	}
	if !rep.Promoted || rep.FinalEpoch != 2 {
		t.Errorf("promotion: promoted=%v epoch=%d, want true/2", rep.Promoted, rep.FinalEpoch)
	}
	if rep.FailoverNs <= 0 {
		t.Errorf("failover latency not measured")
	}
	if rep.Resyncs == 0 {
		t.Errorf("no resyncs recorded (corruption/truncation/promotion must force some)")
	}
	if !rep.DigestsConverged || !rep.TablesIdentical {
		t.Errorf("quiesce: digests=%v identical=%v", rep.DigestsConverged, rep.TablesIdentical)
	}
	if rep.ResyncBytes <= 0 {
		t.Errorf("resync bytes not measured")
	}
	if rep.MatrixBytes != uint64(cfg.N)*uint64(cfg.N) {
		t.Errorf("matrix bytes = %d, want %d", rep.MatrixBytes, cfg.N*cfg.N)
	}
	served := uint64(0)
	for _, m := range rep.PerMember {
		served += m.Served
	}
	if served == 0 {
		t.Errorf("per-member accounting empty: %+v", rep.PerMember)
	}
}

// TestRunBigClusterNoKill checks the partition/corruption path standalone on
// the tables tier: no promotion, epoch stays 1, convergence still holds.
func TestRunBigClusterNoKill(t *testing.T) {
	rep, err := RunBigCluster(BigClusterConfig{
		N:        128,
		Seed:     11,
		Replicas: 2,
		Lookups:  4_000,
		Workers:  2,
		SkipKill: true,
	})
	if err != nil {
		t.Fatalf("bigcluster chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.Promoted || rep.FinalEpoch != 1 {
		t.Errorf("no-kill run promoted=%v epoch=%d", rep.Promoted, rep.FinalEpoch)
	}
	if !rep.DigestsConverged || !rep.TablesIdentical {
		t.Errorf("quiesce: digests=%v identical=%v", rep.DigestsConverged, rep.TablesIdentical)
	}
}

func TestWriteBigClusterCSV(t *testing.T) {
	rep, err := RunBigCluster(BigClusterConfig{
		N:        96,
		Seed:     3,
		Replicas: 1,
		Lookups:  2_500,
		Workers:  2,
		SkipKill: true,
	})
	if err != nil {
		t.Fatalf("run: %v\nreport: %v", err, rep)
	}
	var buf bytes.Buffer
	if err := WriteBigClusterCSV(&buf, []*BigClusterReport{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if lines[0] != BigClusterCSVHeader {
		t.Fatalf("header mismatch: %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != strings.Count(BigClusterCSVHeader, ",") {
		t.Fatalf("row has %d commas, header %d", got, strings.Count(BigClusterCSVHeader, ","))
	}
}
