// Mixed-protocol chaos: JSON-HTTP and binary-TCP clients racing the same
// server through real listeners while snapshots swap mid-load. The two
// transports share one sharded pool, one engine, and one grader — the phase
// proves that protocol plumbing (framing, pooling, error mapping) cannot
// corrupt an answer: every lookup over either wire is graded against the
// snapshot that served it, exactly like the in-process harness.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/httpapi"
	"routetab/internal/serve/loadgen"
	"routetab/internal/serve/wire"
)

// WireConfig parameterises one mixed-protocol run.
type WireConfig struct {
	// N is the node count (default 32).
	N int
	// Seed derives topology and every worker's query stream.
	Seed int64
	// Scheme must be shortest-path for strict grading (default fulltable).
	Scheme string
	// WorkersPerProto is the closed-loop client count on each protocol
	// (default 2: two JSON + two binary workers).
	WorkersPerProto int
	// Lookups is the per-protocol lookup target (default 20_000).
	Lookups uint64
	// BatchSize is pairs per client batch (default 16).
	BatchSize int
	// Swaps is how many snapshot republishes land mid-load (default 2).
	Swaps int
}

func (c *WireConfig) setDefaults() {
	if c.N == 0 {
		c.N = 32
	}
	if c.Scheme == "" {
		c.Scheme = "fulltable"
	}
	if c.WorkersPerProto < 1 {
		c.WorkersPerProto = 2
	}
	if c.Lookups == 0 {
		c.Lookups = 20_000
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
	if c.Swaps == 0 {
		c.Swaps = 2
	}
}

// WireReport is one mixed-protocol run's outcome. The invariant: Incorrect
// and Errored are zero — transports may slow answers down, never bend them.
type WireReport struct {
	Scheme      string        `json:"scheme"`
	N           int           `json:"n"`
	JSONLookups uint64        `json:"json_lookups"`
	BinLookups  uint64        `json:"bin_lookups"`
	Correct     uint64        `json:"correct"`
	Degraded    uint64        `json:"degraded"`
	Incorrect   uint64        `json:"incorrect"`
	Rejected    uint64        `json:"rejected"`
	Unavailable uint64        `json:"unavailable"`
	Errored     uint64        `json:"errored"`
	Swaps       uint64        `json:"swaps"`
	SeqsSeen    int           `json:"seqs_seen"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	QPS         float64       `json:"qps"`
}

// String renders the headline figures.
func (r *WireReport) String() string {
	return fmt.Sprintf("wire chaos %s n=%d: %d json + %d binary lookups in %v (%.0f qps, swaps=%d, seqs=%d; correct=%d degraded=%d incorrect=%d rejected=%d errored=%d)",
		r.Scheme, r.N, r.JSONLookups, r.BinLookups, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.Swaps, r.SeqsSeen, r.Correct, r.Degraded, r.Incorrect, r.Rejected, r.Errored)
}

// Passed reports whether the run held its invariants: no wrong or errored
// answer on either protocol, both protocols actually served, and the swaps
// landed (more than one snapshot seq observed by clients).
func (r *WireReport) Passed() bool {
	return r.Incorrect == 0 && r.Errored == 0 &&
		r.JSONLookups > 0 && r.BinLookups > 0 &&
		r.Swaps > 0 && r.SeqsSeen > 1
}

// seqSet tracks distinct snapshot seqs observed in answers — the proof that
// clients really raced a swap rather than finishing before it.
type seqSet struct {
	mu   sync.Mutex
	seen map[uint64]bool
}

func (s *seqSet) add(seq uint64) {
	s.mu.Lock()
	if s.seen == nil {
		s.seen = map[uint64]bool{}
	}
	s.seen[seq] = true
	s.mu.Unlock()
}

func (s *seqSet) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// RunWire stands up one engine behind both a real HTTP listener (the pooled
// httpapi batch handler) and a real RTBIN1 TCP listener, then races JSON and
// binary closed-loop clients against progress-paced snapshot swaps, grading
// every answer.
func RunWire(cfg WireConfig) (*WireReport, error) {
	cfg.setDefaults()
	if !serve.IsShortestPath(cfg.Scheme) {
		return nil, fmt.Errorf("chaos: scheme %q is not shortest-path; strict grading needs stretch 1", cfg.Scheme)
	}
	g, err := gengraph.GnHalf(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngine(g, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 4, QueueCap: 4096})
	defer srv.Close()

	// Real listeners on loopback: the phase exercises true sockets, framing,
	// and connection reuse, not httptest shortcuts.
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: httpapi.NewBatchHandler(srv)}
	go hs.Serve(httpLn)
	defer hs.Close()

	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ws := wire.NewServer(srv)
	go ws.Serve(binLn)
	defer ws.Close()

	jsonClient := httpapi.NewBatchClient("http://"+httpLn.Addr().String(), nil)
	binClient, err := wire.Dial("chaos", binLn.Addr().String())
	if err != nil {
		return nil, err
	}
	defer binClient.Close()

	gr := &grader{}
	seqs := &seqSet{}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	var jsonAnswered, binAnswered uint64

	// Both protocols run the same seeded closed loop (different seed bases
	// so the query mixes differ), each validating off but feeding the shared
	// strict grader through graded targets.
	runProto := func(tgt loadgen.Target, seedBase int64, answered *uint64) {
		defer wg.Done()
		rep, err := loadgen.RunTarget(
			&gradedTarget{tgt: tgt, gr: gr, seqs: seqs},
			loadgen.TargetMeta{Scheme: cfg.Scheme, N: cfg.N},
			loadgen.Config{
				Workers:   cfg.WorkersPerProto,
				Lookups:   cfg.Lookups,
				BatchSize: cfg.BatchSize,
				Seed:      seedBase,
				Validate:  loadgen.ValidateOff, // the chaos grader judges
			})
		if err != nil {
			errs <- err
			return
		}
		*answered = rep.Lookups
	}

	start := time.Now()
	wg.Add(2)
	go runProto(jsonClient, cfg.Seed, &jsonAnswered)
	go runProto(binClient, cfg.Seed+1, &binAnswered)

	// Progress-paced swapper over the grader's total: each swap toggles edge
	// (1,2) — a full off-path rebuild + atomic publish — spread across the
	// combined lookup target so both protocols race it mid-load.
	total := 2 * cfg.Lookups
	swapsDone := uint64(0)
	swapStop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; i < cfg.Swaps; i++ {
			threshold := total * uint64(i+1) / uint64(cfg.Swaps+1)
			for gr.answered.Load() < threshold {
				select {
				case <-swapStop:
					return
				case <-time.After(50 * time.Microsecond):
				}
			}
			_, err := eng.Mutate(func(g *graph.Graph) error {
				if g.HasEdge(1, 2) {
					return g.RemoveEdge(1, 2)
				}
				return g.AddEdge(1, 2)
			})
			if err != nil {
				return
			}
			swapsDone++
		}
	}()

	wg.Wait()
	close(swapStop)
	swapWG.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &WireReport{
		Scheme:      cfg.Scheme,
		N:           cfg.N,
		JSONLookups: jsonAnswered,
		BinLookups:  binAnswered,
		Correct:     gr.correct.Load(),
		Degraded:    gr.degraded.Load(),
		Incorrect:   gr.incorrect.Load(),
		Rejected:    gr.rejected.Load(),
		Unavailable: gr.unavailable.Load(),
		Errored:     gr.errored.Load(),
		Swaps:       swapsDone,
		SeqsSeen:    seqs.count(),
		Elapsed:     elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(jsonAnswered+binAnswered) / elapsed.Seconds()
	}
	if !rep.Passed() {
		return rep, fmt.Errorf("chaos: wire phase failed: %s", rep)
	}
	return rep, nil
}

// gradedTarget wraps a transport target so every answer flows through the
// shared chaos grader (strict, swap-sound) and the seq tracker before
// returning to the closed loop. Rejections honour the server's backoff hint.
type gradedTarget struct {
	tgt  loadgen.Target
	gr   *grader
	seqs *seqSet
}

func (g *gradedTarget) LookupBatch(pairs [][2]int, out []serve.Result) error {
	if err := g.tgt.LookupBatch(pairs, out); err != nil {
		return err
	}
	var backoff time.Duration
	for i := range out {
		g.gr.answered.Add(1)
		if d := g.gr.grade(&out[i]); d > backoff {
			backoff = d
		}
		if out[i].Err == nil {
			g.seqs.add(out[i].Seq)
		}
	}
	if backoff > 0 {
		time.Sleep(backoff)
	}
	return nil
}
