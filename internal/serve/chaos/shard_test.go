package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunShardSmall is the deterministic tier-1 gate for the partitioned
// cluster harness at a CI-friendly n: per-group replica partitions, a wire
// corruption, a live split racing churn, and a shard-primary kill + promotion
// must all resolve with zero spot violations, every quiesce route walk within
// stretch 3, and per-group convergence. The n=4096 run is `make shardchaos`.
func TestRunShardSmall(t *testing.T) {
	cfg := ShardConfig{
		N:        192,
		Seed:     7,
		Groups:   2,
		Replicas: 1,
		Lookups:  6_000,
		Workers:  3,
	}
	rep, err := RunShard(cfg)
	if err != nil {
		t.Fatalf("shard chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.SpotViolations != 0 {
		t.Fatalf("spot violations: %d", rep.SpotViolations)
	}
	if rep.SpotGraded == 0 {
		t.Fatalf("no answers spot-graded (lookups=%d)", rep.Lookups)
	}
	if rep.SpotMaxStretchMilli > 3000 {
		t.Errorf("max estimate stretch %.3f exceeds the scheme bound 3", float64(rep.SpotMaxStretchMilli)/1000)
	}
	if rep.WalksGraded == 0 {
		t.Errorf("no quiesce route walks graded")
	}
	if !rep.SplitDone || rep.FinalGroups != cfg.Groups+1 || rep.MapEpoch != 2 {
		t.Errorf("split: done=%v groups=%d epoch=%d, want true/%d/2",
			rep.SplitDone, rep.FinalGroups, rep.MapEpoch, cfg.Groups+1)
	}
	if rep.SplitNs <= 0 {
		t.Errorf("split latency not measured")
	}
	if !rep.Promoted {
		t.Errorf("shard primary kill did not end in promotion")
	}
	if rep.FailoverNs <= 0 {
		t.Errorf("failover latency not measured")
	}
	if rep.Partitions < cfg.Groups {
		t.Errorf("partitions injected = %d, want ≥ %d", rep.Partitions, cfg.Groups)
	}
	if rep.Corruptions != 1 {
		t.Errorf("corruptions injected = %d, want 1", rep.Corruptions)
	}
	if !rep.DigestsConverged || !rep.TablesIdentical || !rep.TopologiesEqual {
		t.Errorf("quiesce: digests=%v tables=%v topologies=%v",
			rep.DigestsConverged, rep.TablesIdentical, rep.TopologiesEqual)
	}
	if len(rep.PerShard) != rep.FinalGroups {
		t.Fatalf("per-shard stats for %d groups, want %d", len(rep.PerShard), rep.FinalGroups)
	}
	for _, s := range rep.PerShard {
		if s.AvailabilityPct < 99 {
			t.Errorf("shard %d availability %.3f%% below floor", s.Group, s.AvailabilityPct)
		}
		if s.ResyncBytes <= 0 {
			t.Errorf("shard %d resync payload not measured", s.Group)
		}
	}
}

// TestRunShardNoSplitNoKill checks the partition/corruption path standalone:
// the map stays at epoch 1, no promotion, and convergence still holds.
func TestRunShardNoSplitNoKill(t *testing.T) {
	rep, err := RunShard(ShardConfig{
		N:         128,
		Seed:      11,
		Groups:    2,
		Replicas:  1,
		Lookups:   4_000,
		Workers:   2,
		SkipSplit: true,
		SkipKill:  true,
	})
	if err != nil {
		t.Fatalf("shard chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.SplitDone || rep.MapEpoch != 1 || rep.FinalGroups != 2 {
		t.Errorf("no-split run: done=%v epoch=%d groups=%d", rep.SplitDone, rep.MapEpoch, rep.FinalGroups)
	}
	if rep.Promoted {
		t.Errorf("no-kill run promoted")
	}
	if !rep.DigestsConverged || !rep.TablesIdentical || !rep.TopologiesEqual {
		t.Errorf("quiesce: digests=%v tables=%v topologies=%v",
			rep.DigestsConverged, rep.TablesIdentical, rep.TopologiesEqual)
	}
}

func TestWriteShardCSV(t *testing.T) {
	rep, err := RunShard(ShardConfig{
		N:         96,
		Seed:      3,
		Groups:    2,
		Replicas:  1,
		Lookups:   2_500,
		Workers:   2,
		SkipSplit: true,
		SkipKill:  true,
	})
	if err != nil {
		t.Fatalf("run: %v\nreport: %v", err, rep)
	}
	var buf bytes.Buffer
	if err := WriteShardCSV(&buf, []*ShardReport{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if lines[0] != ShardCSVHeader {
		t.Fatalf("header mismatch: %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != strings.Count(ShardCSVHeader, ",") {
		t.Fatalf("row has %d commas, header %d", got, strings.Count(ShardCSVHeader, ","))
	}
}
