// Shard chaos: the partitioned-cluster gate. A sharded tables-tier cluster —
// the keyspace split across shard groups by a versioned shard map, each group
// an ordinary primary/replica pair — serves a sparse topology past the
// all-pairs ceiling while the harness races a live shard split against churn
// bursts, partitions each group's replica, bit-flips a WAL batch on the wire,
// and kills a shard primary recovered by in-group promotion.
//
// Grading is two-layered. Continuously, every member carries a
// spotgrade.Grader over its own restricted engine: reachability, real
// neighbour next hops, and the two-sided d ≤ est ≤ 3d estimate bound are
// asserted against the member's own snapshot, so replica staleness and
// mid-split races cannot cause false verdicts. At quiesce — after every group
// has converged and the groups' topologies are proven byte-identical — full
// routes are walked end to end through the scatter-gather front, each hop
// resolved by the shard owning it, and must deliver within the stretch-3
// budget. One incorrect answer, one stretch violation, a shard below its
// availability floor, or any divergence fails the run.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/cluster/shard"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/spotgrade"
	"routetab/internal/shortestpath"
)

// ErrSplit reports a live shard split that did not complete (or was expected
// and never ran).
var ErrSplit = errors.New("chaos: shard split did not complete")

// ShardConfig parameterises one partitioned-cluster chaos run.
type ShardConfig struct {
	// N is the sparse topology size (default 4096).
	N int
	// AvgDeg is the topology's target average degree (default 8).
	AvgDeg float64
	// Groups is the initial shard-group count (default 2).
	Groups int
	// Replicas is the replica count per group (default 1 — each group a
	// primary/replica pair).
	Replicas int
	// Seed keys the topology, shard map, query streams, churn, and corruption.
	Seed int64
	// Lookups is the total front-door lookup target across workers (default
	// 20_000).
	Lookups uint64
	// Workers is the closed-loop client count (default 4).
	Workers int
	// Corruptions is how many replica WAL fetches are bit-flipped on the wire
	// (default 1; each must end in a clean state-fetch fallback).
	Corruptions int
	// SkipSplit disables the live split phase.
	SkipSplit bool
	// SplitFrom is the group the split carves from (default 0).
	SplitFrom int
	// SkipKill disables the shard-primary kill + promotion phase.
	SkipKill bool
	// KillGroup is the group whose primary is killed (default 0).
	KillGroup int
	// MinAvailability is the per-shard availability floor at quiesce
	// (default 0.99).
	MinAvailability float64
	// SyncInterval paces the replication pump (default 1ms).
	SyncInterval time.Duration
	// SampleEvery grades ~1/SampleEvery of answers per member (default 1:
	// grade all).
	SampleEvery int
	// WalkSamples is how many full cross-shard route walks are graded per
	// group at quiesce (default 8).
	WalkSamples int
}

func (c *ShardConfig) setDefaults() {
	if c.N < 8 {
		c.N = 4096
	}
	if c.AvgDeg <= 0 {
		c.AvgDeg = 8
	}
	if c.Groups < 2 {
		c.Groups = 2
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Lookups == 0 {
		c.Lookups = 20_000
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Corruptions < 0 {
		c.Corruptions = 0
	} else if c.Corruptions == 0 {
		c.Corruptions = 1
	}
	if c.MinAvailability <= 0 {
		c.MinAvailability = 0.99
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = time.Millisecond
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.WalkSamples <= 0 {
		c.WalkSamples = 8
	}
}

// ShardStats is one shard group's record at quiesce.
type ShardStats struct {
	Group           int     `json:"group"`
	Served          uint64  `json:"served"`
	Failed          uint64  `json:"failed"`
	AvailabilityPct float64 `json:"availability_pct"`
	// ResyncBytes is the encoded replication state one replica of this shard
	// receives on a join or resync — the payload the keyspace split shrinks.
	ResyncBytes int `json:"resync_bytes"`
}

// ShardReport is one partitioned-cluster chaos run's graded outcome.
type ShardReport struct {
	N           int   `json:"n"`
	Seed        int64 `json:"seed"`
	Groups      int   `json:"groups"`
	FinalGroups int   `json:"final_groups"`
	Replicas    int   `json:"replicas"`
	Members     int   `json:"members"`

	Lookups     uint64 `json:"lookups"`
	Served      uint64 `json:"served"`
	Rejected    uint64 `json:"rejected"`
	Unavailable uint64 `json:"unavailable"`
	Errored     uint64 `json:"errored"`

	SpotGraded          uint64 `json:"spot_graded"`
	SpotViolations      uint64 `json:"spot_violations"`
	SpotMaxStretchMilli int64  `json:"spot_max_stretch_milli"`
	WalksGraded         int    `json:"walks_graded"`

	ChurnRounds int    `json:"churn_rounds"`
	Partitions  int    `json:"partitions"`
	Corruptions int    `json:"corruptions"`
	SplitDone   bool   `json:"split_done"`
	SplitNs     int64  `json:"split_ns"`
	MapEpoch    uint64 `json:"map_epoch"`
	Promoted    bool   `json:"promoted"`
	FailoverNs  int64  `json:"failover_ns"`

	Resyncs      uint64 `json:"resyncs"`
	MaxReplayLag uint64 `json:"max_replay_lag"`

	AvailabilityPct         float64       `json:"availability_pct"`
	MinShardAvailabilityPct float64       `json:"min_shard_availability_pct"`
	PerShard                []ShardStats  `json:"per_shard"`
	DigestsConverged        bool          `json:"digests_converged"`
	TablesIdentical         bool          `json:"tables_identical"`
	TopologiesEqual         bool          `json:"topologies_equal"`
	Elapsed                 time.Duration `json:"elapsed_ns"`
	QPS                     float64       `json:"qps"`
}

// String renders the headline figures.
func (r *ShardReport) String() string {
	return fmt.Sprintf("shard n=%d groups=%d→%d replicas=%d: %d lookups (%.0f qps), %.3f%% available (worst shard %.3f%%), spot graded=%d violations=%d max stretch %.3f, %d walks, %d churn rounds, %d partitions, %d corruptions, split=%v in %v epoch=%d, promoted=%v failover %v, resyncs=%d lag≤%d, digests converged=%v tables identical=%v topologies equal=%v",
		r.N, r.Groups, r.FinalGroups, r.Replicas, r.Lookups, r.QPS,
		r.AvailabilityPct, r.MinShardAvailabilityPct,
		r.SpotGraded, r.SpotViolations, float64(r.SpotMaxStretchMilli)/1000,
		r.WalksGraded, r.ChurnRounds, r.Partitions, r.Corruptions,
		r.SplitDone, time.Duration(r.SplitNs), r.MapEpoch,
		r.Promoted, time.Duration(r.FailoverNs), r.Resyncs, r.MaxReplayLag,
		r.DigestsConverged, r.TablesIdentical, r.TopologiesEqual)
}

// shardMember wraps one group member's backend with its chaos gate and spot
// grader. The grader is bound after construction (and after a split, for the
// new group's members); lookups served before binding pass ungraded.
type shardMember struct {
	name   string
	gate   *gate
	inner  cluster.Backend
	grader atomic.Pointer[spotgrade.Grader]
}

func (m *shardMember) Name() string { return m.name }

func (m *shardMember) Lookup(src, dst int) (serve.Result, error) {
	if m.gate.down.Load() {
		return serve.Result{}, errUnreachable
	}
	res, err := m.inner.Lookup(src, dst)
	if err == nil {
		if g := m.grader.Load(); g != nil {
			g.Observe(src, dst, &res)
		}
	}
	return res, err
}

// shardHarness is one run's mutable state.
type shardHarness struct {
	cfg ShardConfig

	answered    atomic.Uint64
	served      atomic.Uint64
	rejected    atomic.Uint64
	unavailable atomic.Uint64
	errored     atomic.Uint64

	mu      sync.Mutex
	gates   map[string]*gate
	members map[string]*shardMember
	sources map[string]*chaosSource
	nsrc    int64

	c     *shard.Cluster
	front *shard.Router

	toggles [][2]int

	churnDone  int
	partitions int
	splitDone  bool
	splitNs    int64
	newGroupID int
	promoted   bool
	failoverNs int64
	maxLag     atomic.Uint64
}

// gateFor returns member name's gate, creating it on first use — the same
// gate severs the member's replication feed and its client traffic, like a
// real partition.
func (h *shardHarness) gateFor(name string) *gate {
	h.mu.Lock()
	defer h.mu.Unlock()
	g := h.gates[name]
	if g == nil {
		g = &gate{}
		h.gates[name] = g
	}
	return g
}

// bindGraders attaches a spot grader over each of group id's members' own
// engines (idempotent; members already bound keep their grader).
func (h *shardHarness) bindGraders(id int) {
	grp := h.c.Group(id)
	if grp == nil {
		return
	}
	bind := func(name string, eng *serve.Engine) {
		h.mu.Lock()
		m := h.members[name]
		h.mu.Unlock()
		if m != nil && m.grader.Load() == nil {
			m.grader.Store(spotgrade.New(eng, spotgrade.Config{
				Seed: h.cfg.Seed, SampleEvery: h.cfg.SampleEvery,
			}))
		}
	}
	bind(fmt.Sprintf("g%d-m0", id), grp.Primary.Engine())
	for i, r := range grp.Replicas() {
		bind(fmt.Sprintf("g%d-m%d", id, i+1), r.Engine())
	}
}

// RunShard executes one partitioned-cluster chaos run. The report is complete
// even on failure; the error names the broken invariant.
func RunShard(cfg ShardConfig) (*ShardReport, error) {
	cfg.setDefaults()
	g, err := gengraph.SparseConnected(cfg.N, cfg.AvgDeg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	m, err := shard.NewUniform(cfg.N, cfg.Groups)
	if err != nil {
		return nil, err
	}

	h := &shardHarness{
		cfg:     cfg,
		gates:   make(map[string]*gate),
		members: make(map[string]*shardMember),
		sources: make(map[string]*chaosSource),
	}
	h.toggles = absentEdges(g, 8)
	if len(h.toggles) == 0 {
		return nil, errors.New("chaos: no absent edges to churn (topology is complete)")
	}

	c, err := shard.NewCluster(g, m, shard.ClusterOptions{
		Replicas: cfg.Replicas,
		Server:   serve.ServerOptions{Shards: 2, QueueCap: cfg.Workers * 4, StretchSampleEvery: -1},
		Replica:  cluster.ReplicaOptions{SyncInterval: cfg.SyncInterval},
		GroupRouter: cluster.RouterOptions{
			HedgeAfter: 500 * time.Microsecond,
			ProbeAfter: 2 * time.Millisecond,
		},
		Front: shard.RouterOptions{Seed: cfg.Seed},
		WrapSource: func(group int, name string, s cluster.Source) cluster.Source {
			cs := &chaosSource{target: s, gate: h.gateFor(name)}
			h.mu.Lock()
			cs.rng = rand.New(rand.NewSource(cfg.Seed*7919 + h.nsrc))
			h.nsrc++
			h.sources[name] = cs
			h.mu.Unlock()
			return cs
		},
		WrapBackend: func(group int, name string, b cluster.Backend) cluster.Backend {
			sm := &shardMember{name: name, gate: h.gateFor(name), inner: b}
			h.mu.Lock()
			h.members[name] = sm
			h.mu.Unlock()
			return sm
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	h.c, h.front = c, c.Front()
	for _, id := range c.GroupIDs() {
		h.bindGraders(id)
	}
	return h.drive()
}

// churn publishes one deterministic topology toggle through every group
// primary in lockstep; each costs a full restricted rebuild per member.
func (h *shardHarness) churn(round int) error {
	e := h.toggles[round%len(h.toggles)]
	err := h.c.Mutate(func(gr *graph.Graph) error {
		if gr.HasEdge(e[0], e[1]) {
			return gr.RemoveEdge(e[0], e[1])
		}
		return gr.AddEdge(e[0], e[1])
	})
	if err != nil {
		return err
	}
	h.churnDone++
	return nil
}

// sampleLag folds every replica's replay lag into the running max.
func (h *shardHarness) sampleLag() {
	for _, id := range h.c.GroupIDs() {
		grp := h.c.Group(id)
		if grp == nil {
			continue
		}
		for _, r := range grp.Replicas() {
			if _, _, lag := r.Stats(); lag > h.maxLag.Load() {
				h.maxLag.Store(lag)
			}
		}
	}
}

// settle waits (bounded) for every group to converge; convergence is verified
// for real at quiesce.
func (h *shardHarness) settle(deadline time.Duration) {
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		if ok, err := h.c.CheckEntropy(); err == nil && ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// buildPhases lays out the injection schedule: churn warmup, a partition +
// churn + heal cycle per initial group's replica, a wire corruption forcing a
// state-fetch fallback, the live split racing a churn burst, the shard-primary
// kill + promotion, then final churn across the grown cluster.
func (h *shardHarness) buildPhases() []phase {
	initial := h.c.GroupIDs()
	round := 0
	churnN := func(k int) func() error {
		return func() error {
			for i := 0; i < k; i++ {
				if err := h.churn(round); err != nil {
					return err
				}
				round++
			}
			return nil
		}
	}

	var ps []phase
	ps = append(ps, phase{name: "churn warmup", run: func() error {
		if err := churnN(2)(); err != nil {
			return err
		}
		h.settle(10 * time.Second)
		return nil
	}})

	for _, id := range initial {
		name := fmt.Sprintf("g%d-m1", id)
		ps = append(ps, phase{name: fmt.Sprintf("partition %s", name), run: func() error {
			h.gateFor(name).down.Store(true)
			h.partitions++
			if err := churnN(1)(); err != nil {
				return err
			}
			time.Sleep(4 * h.cfg.SyncInterval)
			h.gateFor(name).down.Store(false)
			h.settle(10 * time.Second)
			return nil
		}})
	}

	for c := 0; c < h.cfg.Corruptions; c++ {
		name := fmt.Sprintf("g%d-m1", initial[c%len(initial)])
		ps = append(ps, phase{name: fmt.Sprintf("wire corruption %s", name), run: func() error {
			h.mu.Lock()
			cs := h.sources[name]
			h.mu.Unlock()
			if cs == nil {
				return fmt.Errorf("chaos: no replication source for %s", name)
			}
			cs.mu.Lock()
			cs.corruptNext = true
			cs.mu.Unlock()
			if err := churnN(1)(); err != nil {
				return err
			}
			h.settle(10 * time.Second)
			return nil
		}})
	}

	if !h.cfg.SkipSplit {
		ps = append(ps, phase{name: "split racing churn", run: func() error {
			var churnErr error
			stopChurn := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stopChurn:
						return
					default:
					}
					if err := h.churn(i); err != nil {
						churnErr = err
						return
					}
					time.Sleep(500 * time.Microsecond)
				}
			}()
			start := time.Now()
			newID, err := h.c.Split(h.cfg.SplitFrom)
			close(stopChurn)
			wg.Wait()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSplit, err)
			}
			if churnErr != nil {
				return fmt.Errorf("chaos: churn during split: %w", churnErr)
			}
			h.splitNs = time.Since(start).Nanoseconds()
			h.splitDone, h.newGroupID = true, newID
			h.bindGraders(newID)
			h.settle(10 * time.Second)
			return nil
		}})
	}

	if !h.cfg.SkipKill {
		ps = append(ps, phase{name: "shard primary kill + promotion", run: h.killPromote})
	}

	ps = append(ps, phase{name: "final churn", run: func() error {
		if err := churnN(2)(); err != nil {
			return err
		}
		h.settle(10 * time.Second)
		return nil
	}})
	return ps
}

// killPromote kills one shard's primary (unreachable to clients), promotes
// its first replica under a bumped epoch, and measures kill → first routed
// answer for a key that shard owns.
func (h *shardHarness) killPromote() error {
	h.settle(10 * time.Second)
	id := h.cfg.KillGroup
	grp := h.c.Group(id)
	if grp == nil || len(grp.Replicas()) == 0 {
		return fmt.Errorf("%w: group %d has no replica to promote", ErrFailover, id)
	}
	m := h.c.Map()
	probeSrc := 0
	for u := 1; u <= h.cfg.N; u++ {
		if m.GroupFor(u) == id {
			probeSrc = u
			break
		}
	}
	if probeSrc == 0 {
		return fmt.Errorf("%w: group %d owns no keys", ErrFailover, id)
	}
	probeDst := 1
	if probeDst == probeSrc {
		probeDst = 2
	}
	start := time.Now()
	h.gateFor(fmt.Sprintf("g%d-m0", id)).down.Store(true)
	if err := h.c.Promote(id, 0); err != nil {
		return fmt.Errorf("%w: %v", ErrFailover, err)
	}
	h.promoted = true
	for {
		res, err := h.front.Lookup(probeSrc, probeDst)
		h.tally(res, err)
		if err == nil && res.Err == nil {
			break
		}
		if time.Since(start) > 10*time.Second {
			return fmt.Errorf("%w: no routed answer %v after shard kill", ErrFailover, time.Since(start))
		}
		time.Sleep(100 * time.Microsecond)
	}
	h.failoverNs = time.Since(start).Nanoseconds()
	h.settle(10 * time.Second)
	return nil
}

// tally grades one front-door lookup's availability outcome; answer
// correctness is the per-member spot graders' and the quiesce walks' job.
func (h *shardHarness) tally(res serve.Result, err error) time.Duration {
	h.answered.Add(1)
	if err != nil {
		h.errored.Add(1)
		return 0
	}
	var oe *serve.OverloadedError
	switch {
	case res.Err == nil:
		h.served.Add(1)
	case errors.As(res.Err, &oe):
		h.rejected.Add(1)
		return oe.RetryAfter
	case errors.Is(res.Err, serve.ErrOverloaded), errors.Is(res.Err, serve.ErrClosed):
		h.rejected.Add(1)
		return 500 * time.Microsecond
	case errors.Is(res.Err, shard.ErrShardUnavailable), errors.Is(res.Err, serve.ErrUnavailable):
		h.unavailable.Add(1)
	default:
		h.errored.Add(1)
	}
	return 0
}

// drive runs the closed-loop workers against the front, a replication pump,
// and the phase controller, then quiesces and grades convergence end to end.
func (h *shardHarness) drive() (*ShardReport, error) {
	cfg := h.cfg
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	pumpStop := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		t := time.NewTicker(cfg.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-pumpStop:
				return
			case <-t.C:
				_ = h.c.SyncAll()
				h.sampleLag()
			}
		}
	}()

	var issued atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if issued.Add(1) > cfg.Lookups {
					halt()
					return
				}
				src := rng.Intn(cfg.N) + 1
				dst := rng.Intn(cfg.N-1) + 1
				if dst >= src {
					dst++
				}
				res, err := h.front.Lookup(src, dst)
				if b := h.tally(res, err); b > 0 {
					if b > time.Millisecond {
						b = time.Millisecond
					}
					time.Sleep(b)
				}
			}
		}()
	}

	phases := h.buildPhases()
	ctlErr := make(chan error, 1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		total := len(phases)
		for k, ph := range phases {
			threshold := cfg.Lookups * uint64(k+1) / uint64(total+1)
			for h.answered.Load() < threshold {
				select {
				case <-stop:
				case <-time.After(100 * time.Microsecond):
					continue
				}
				break
			}
			if err := ph.run(); err != nil {
				select {
				case ctlErr <- fmt.Errorf("chaos shard phase %q: %w", ph.name, err):
				default:
				}
				halt()
				return
			}
		}
	}()

	wg.Wait()
	halt()
	ctlWG.Wait()
	elapsed := time.Since(start)

	var phaseErr error
	select {
	case phaseErr = <-ctlErr:
	default:
	}

	// Quiesce: heal every gate, disarm corruption, stop the pump, then force
	// convergence and prove it.
	h.mu.Lock()
	for _, g := range h.gates {
		g.down.Store(false)
	}
	srcs := make([]*chaosSource, 0, len(h.sources))
	for _, cs := range h.sources {
		srcs = append(srcs, cs)
	}
	h.mu.Unlock()
	for _, cs := range srcs {
		cs.mu.Lock()
		cs.corruptNext = false
		cs.mu.Unlock()
	}
	close(pumpStop)
	pumpWG.Wait()

	converged := false
	until := time.Now().Add(15 * time.Second)
	for time.Now().Before(until) {
		_ = h.c.SyncAll()
		if ok, err := h.c.CheckEntropy(); err == nil && ok {
			converged = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	h.sampleLag()

	// Per-group table identity and cross-group topology lockstep.
	ids := h.c.GroupIDs()
	identical, topoEqual := true, true
	members := 0
	var truth *graph.Graph
	for _, id := range ids {
		grp := h.c.Group(id)
		snap := grp.Primary.Engine().Current()
		members += 1 + len(grp.Replicas())
		if truth == nil {
			truth = snap.Graph
		} else if !sameEdges(truth, snap.Graph) {
			topoEqual = false
		}
		want := snap.TablesBytes()
		for _, r := range grp.Replicas() {
			if !bytes.Equal(r.Engine().Current().TablesBytes(), want) {
				identical = false
			}
		}
	}

	var walked int
	var walkErr error
	if topoEqual && truth != nil {
		walked, walkErr = h.walkGrade(truth)
	}

	// Per-shard availability and resync payloads.
	stats := h.front.Stats()
	minAvail := 1.0
	var perShard []ShardStats
	for _, id := range ids {
		s := stats[id]
		sb, _ := h.c.StateBytes(id)
		perShard = append(perShard, ShardStats{
			Group: id, Served: s.Served, Failed: s.Failed,
			AvailabilityPct: 100 * s.Availability(), ResyncBytes: sb,
		})
		if a := s.Availability(); a < minAvail {
			minAvail = a
		}
	}

	var resyncs uint64
	for _, id := range ids {
		for _, r := range h.c.Group(id).Replicas() {
			_, rs, _ := r.Stats()
			resyncs += rs
		}
	}
	corruptions := 0
	for _, cs := range srcs {
		cs.mu.Lock()
		corruptions += cs.corrupted
		cs.mu.Unlock()
	}

	var spotGraded, spotViolations uint64
	var spotMax int64
	var firstSpotErr error
	h.mu.Lock()
	graders := make([]*spotgrade.Grader, 0, len(h.members))
	for _, m := range h.members {
		if g := m.grader.Load(); g != nil {
			graders = append(graders, g)
		}
	}
	h.mu.Unlock()
	for _, g := range graders {
		spotGraded += g.Graded()
		spotViolations += g.Violations()
		if ms := g.MaxStretchMilli(); ms > spotMax {
			spotMax = ms
		}
		if firstSpotErr == nil {
			firstSpotErr = g.Err()
		}
	}

	rep := &ShardReport{
		N:                       cfg.N,
		Seed:                    cfg.Seed,
		Groups:                  cfg.Groups,
		FinalGroups:             len(ids),
		Replicas:                cfg.Replicas,
		Members:                 members,
		Lookups:                 h.answered.Load(),
		Served:                  h.served.Load(),
		Rejected:                h.rejected.Load(),
		Unavailable:             h.unavailable.Load(),
		Errored:                 h.errored.Load(),
		SpotGraded:              spotGraded,
		SpotViolations:          spotViolations,
		SpotMaxStretchMilli:     spotMax,
		WalksGraded:             walked,
		ChurnRounds:             h.churnDone,
		Partitions:              h.partitions,
		Corruptions:             corruptions,
		SplitDone:               h.splitDone,
		SplitNs:                 h.splitNs,
		MapEpoch:                h.c.Map().Epoch,
		Promoted:                h.promoted,
		FailoverNs:              h.failoverNs,
		Resyncs:                 resyncs,
		MaxReplayLag:            h.maxLag.Load(),
		MinShardAvailabilityPct: 100 * minAvail,
		PerShard:                perShard,
		DigestsConverged:        converged,
		TablesIdentical:         identical,
		TopologiesEqual:         topoEqual,
		Elapsed:                 elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Lookups) / elapsed.Seconds()
	}
	if rep.Lookups > 0 {
		rep.AvailabilityPct = 100 * float64(rep.Served) / float64(rep.Lookups)
	}

	switch {
	case phaseErr != nil:
		return rep, phaseErr
	case walkErr != nil:
		return rep, walkErr
	case rep.SpotViolations > 0:
		return rep, fmt.Errorf("%w: %v", ErrIncorrect, firstSpotErr)
	case rep.SpotGraded == 0:
		return rep, fmt.Errorf("chaos: no answers were spot-graded (lookups=%d)", rep.Lookups)
	case rep.WalksGraded == 0:
		return rep, fmt.Errorf("chaos: no quiesce route walks were graded")
	case minAvail < cfg.MinAvailability:
		return rep, fmt.Errorf("%w: worst shard availability %.3f%% (floor %.1f%%)",
			ErrBudget, 100*minAvail, 100*cfg.MinAvailability)
	case !converged || !identical || !topoEqual:
		return rep, fmt.Errorf("%w: digests converged=%v, tables identical=%v, topologies equal=%v",
			ErrDiverged, converged, identical, topoEqual)
	case !cfg.SkipSplit && !rep.SplitDone:
		return rep, ErrSplit
	case !cfg.SkipKill && !rep.Promoted:
		return rep, ErrFailover
	}
	return rep, nil
}

// walkGrade walks full routes end to end through the front at quiesce: for
// each group, sampled owned sources route to random destinations, every hop
// resolved by the shard owning it, every hop a real edge of the converged
// topology, and the whole route within the stretch-3 hop budget.
func (h *shardHarness) walkGrade(truth *graph.Graph) (int, error) {
	rng := rand.New(rand.NewSource(h.cfg.Seed * 31))
	m := h.c.Map()
	bySrc := make(map[int][]int)
	for u := 1; u <= truth.N(); u++ {
		g := m.GroupFor(u)
		if len(bySrc[g]) < h.cfg.WalkSamples {
			bySrc[g] = append(bySrc[g], u)
		}
	}
	cache := make(map[int]*shortestpath.BFSResult)
	bfsFrom := func(dst int) (*shortestpath.BFSResult, error) {
		if r, ok := cache[dst]; ok {
			return r, nil
		}
		r, err := shortestpath.BFS(truth, dst)
		if err == nil {
			cache[dst] = r
		}
		return r, err
	}
	walked := 0
	for _, gid := range h.c.GroupIDs() {
		for _, src := range bySrc[gid] {
			dst := rng.Intn(truth.N()) + 1
			if dst == src {
				dst = dst%truth.N() + 1
			}
			bfs, err := bfsFrom(dst)
			if err != nil {
				return walked, err
			}
			d := bfs.Dist[src]
			if d == shortestpath.Unreachable {
				continue
			}
			res, err := h.front.Lookup(src, dst)
			if err != nil || res.Err != nil {
				return walked, fmt.Errorf("%w: quiesce walk %d→%d not served (err=%v, res.Err=%v)",
					ErrIncorrect, src, dst, err, res.Err)
			}
			if res.Dist < d || res.Dist > 3*d {
				return walked, fmt.Errorf("%w: quiesce estimate %d→%d = %d outside [%d, %d]",
					ErrIncorrect, src, dst, res.Dist, d, 3*d)
			}
			cur, hops := src, 0
			for cur != dst {
				r2, err := h.front.Lookup(cur, dst)
				if err != nil || r2.Err != nil {
					return walked, fmt.Errorf("%w: quiesce walk %d→%d stalled at %d (err=%v, res.Err=%v)",
						ErrIncorrect, src, dst, cur, err, r2.Err)
				}
				if !truth.HasEdge(cur, r2.Next) {
					return walked, fmt.Errorf("%w: quiesce walk %d→%d: hop %d→%d is not an edge",
						ErrIncorrect, src, dst, cur, r2.Next)
				}
				cur = r2.Next
				hops++
				if hops > 3*d {
					return walked, fmt.Errorf("%w: quiesce walk %d→%d exceeded %d hops (d=%d)",
						ErrIncorrect, src, dst, 3*d, d)
				}
			}
			walked++
		}
	}
	return walked, nil
}

// sameEdges compares topologies by their deterministic edge lists.
func sameEdges(a, b *graph.Graph) bool {
	if a.N() != b.N() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// ShardCSVHeader is the docs/shard artefact header row (EXPERIMENTS.md E21).
const ShardCSVHeader = "n,seed,groups,final_groups,replicas,lookups,served,rejected,unavailable,errored,availability_pct,min_shard_availability_pct,spot_graded,spot_violations,spot_max_stretch_milli,walks_graded,churn_rounds,partitions,corruptions,split_done,split_ns,map_epoch,promoted,failover_ns,resyncs,max_replay_lag,max_shard_resync_bytes,digests_converged,tables_identical,topologies_equal,qps"

// WriteShardCSV renders shard chaos reports in the artefact layout.
func WriteShardCSV(w io.Writer, reports []*ShardReport) error {
	if _, err := fmt.Fprintln(w, ShardCSVHeader); err != nil {
		return err
	}
	for _, r := range reports {
		maxResync := 0
		for _, s := range r.PerShard {
			if s.ResyncBytes > maxResync {
				maxResync = s.ResyncBytes
			}
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.4f,%d,%d,%d,%d,%d,%d,%d,%v,%d,%d,%v,%d,%d,%d,%d,%v,%v,%v,%.0f\n",
			r.N, r.Seed, r.Groups, r.FinalGroups, r.Replicas, r.Lookups, r.Served,
			r.Rejected, r.Unavailable, r.Errored, r.AvailabilityPct, r.MinShardAvailabilityPct,
			r.SpotGraded, r.SpotViolations, r.SpotMaxStretchMilli, r.WalksGraded,
			r.ChurnRounds, r.Partitions, r.Corruptions, r.SplitDone, r.SplitNs,
			r.MapEpoch, r.Promoted, r.FailoverNs, r.Resyncs, r.MaxReplayLag,
			maxResync, r.DigestsConverged, r.TablesIdentical, r.TopologiesEqual, r.QPS)
		if err != nil {
			return err
		}
	}
	return nil
}
