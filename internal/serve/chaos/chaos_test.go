package chaos

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmallSweep is the deterministic tier-1 chaos gate: a small
// G(32, 1/2) run with every injection kind armed must grade clean.
func TestRunSmallSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		N:           32,
		Seed:        7,
		Scheme:      "fulltable",
		Lookups:     40_000,
		Workers:     6,
		BatchSize:   16,
		Stalls:      2,
		StallDur:    5 * time.Millisecond,
		Drops:       2,
		DropBatches: 20,
		Bursts:      5,
		BurstLinks:  6,
		BurstNodes:  1,
		Kills:       2,
		PersistPath: filepath.Join(dir, "snap.rtsnap"),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.Incorrect != 0 {
		t.Fatalf("incorrect answers: %d", rep.Incorrect)
	}
	if rep.Correct == 0 {
		t.Fatalf("no correct answers graded (lookups=%d)", rep.Lookups)
	}
	if rep.Bursts != cfg.Bursts {
		t.Errorf("bursts executed = %d, want %d", rep.Bursts, cfg.Bursts)
	}
	if rep.BurstEvents == 0 {
		t.Errorf("fault plan scheduled no events")
	}
	if rep.Kills != cfg.Kills {
		t.Errorf("kills executed = %d, want %d", rep.Kills, cfg.Kills)
	}
	if !rep.RestoredIdentical {
		t.Errorf("kill restore was not byte-identical")
	}
	if rep.RecoveryNs <= 0 {
		t.Errorf("recovery time not measured")
	}
	if !rep.SelfHealed {
		t.Errorf("topology did not self-heal")
	}
	if rep.MaxDetourExtraHops > 2 {
		t.Errorf("max detour extra = %d, want ≤ 2", rep.MaxDetourExtraHops)
	}
	if rep.AvailabilityPct < 90 {
		t.Errorf("availability %.2f%% below 90%%", rep.AvailabilityPct)
	}
	if rep.Trips == 0 || rep.Shunts == 0 {
		t.Errorf("stall surge exercised no breaker path (trips=%d shunts=%d)", rep.Trips, rep.Shunts)
	}
}

// TestRunDegradedDuringChurn runs bursts only (no kills/stalls/drops) and
// expects the overlay to actually produce graded degraded detours: the run
// must see churn, not just a healthy steady state.
func TestRunDegradedDuringChurn(t *testing.T) {
	cfg := Config{
		N:          32,
		Seed:       3,
		Lookups:    60_000,
		Stalls:     -1,
		Drops:      -1,
		Kills:      -1,
		Bursts:     6,
		BurstLinks: 10,
		BurstNodes: 2,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v\nreport: %v", err, rep)
	}
	if rep.Degraded+rep.Unavailable == 0 {
		t.Errorf("churn bursts produced no degraded or unavailable answers (events=%d); injection not reaching the serve path", rep.BurstEvents)
	}
	if rep.Incorrect != 0 {
		t.Fatalf("incorrect answers: %d", rep.Incorrect)
	}
	if !rep.SelfHealed {
		t.Errorf("topology did not self-heal after bursts")
	}
}

// TestRunRejectsNonShortestPathScheme: strict grading needs stretch-1 ground
// truth, so stretchy schemes are refused up front.
func TestRunRejectsNonShortestPathScheme(t *testing.T) {
	if _, err := Run(Config{N: 16, Scheme: "interval-dfs"}); err == nil {
		t.Fatalf("Run accepted a non-shortest-path scheme")
	}
	if _, err := Run(Config{N: 16, Scheme: "no-such-scheme"}); err == nil {
		t.Fatalf("Run accepted an unknown scheme")
	}
}

// TestWriteCSV checks the artefact layout: header plus one row per report,
// with column count matching the header.
func TestWriteCSV(t *testing.T) {
	rep := &Report{Scheme: "fulltable", N: 64, Seed: 1, Lookups: 1000, Correct: 990,
		Degraded: 10, AvailabilityPct: 100, RestoredIdentical: true, SelfHealed: true}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Report{rep, rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	want := len(strings.Split(CSVHeader, ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != want {
			t.Errorf("line %d has %d columns, want %d: %q", i, got, want, ln)
		}
	}
}

// TestErrorsAreDistinct guards errors.Is behaviour the daemon relies on when
// mapping run failures to exit codes.
func TestErrorsAreDistinct(t *testing.T) {
	all := []error{ErrIncorrect, ErrBudget, ErrDetourBudget, ErrRestore, ErrNotHealed}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, errors.Is(a, b))
			}
		}
	}
}
