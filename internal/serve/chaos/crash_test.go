package chaos

import (
	"strings"
	"testing"
)

// TestRunCrash is the deterministic crash-recovery gate in miniature: every
// byte boundary of a multi-segment store schedule and every record boundary
// (clean + torn) of an engine churn schedule must recover to the exact
// durable prefix under the original epoch.
func TestRunCrash(t *testing.T) {
	rep, err := RunCrash(CrashConfig{N: 16, Seed: 5, Records: 8, ByteRecords: 16})
	if err != nil {
		t.Fatalf("crash sweep failed: %v\nreport: %v", err, rep)
	}
	if rep.ByteSegments < 2 {
		t.Errorf("byte matrix did not rotate: %d segments", rep.ByteSegments)
	}
	if rep.ByteBoundaries < int64(rep.ByteRecords)*13 {
		t.Errorf("byte matrix too small: %d boundaries for %d records", rep.ByteBoundaries, rep.ByteRecords)
	}
	if rep.RecordBoundaries != 9 || rep.TornBoundaries != 8 {
		t.Errorf("engine matrix boundaries = %d clean / %d torn, want 9/8", rep.RecordBoundaries, rep.TornBoundaries)
	}
	if !rep.EpochPreserved || !rep.DigestsIdentical {
		t.Errorf("epoch preserved=%v digests identical=%v", rep.EpochPreserved, rep.DigestsIdentical)
	}
	if rep.Replayed == 0 {
		t.Errorf("no records replayed across restarts")
	}
	if !strings.Contains(rep.String(), "epoch preserved=true") {
		t.Errorf("report string: %q", rep.String())
	}
}

// TestRunCrashRejectsUnknownScheme pins the input validation.
func TestRunCrashRejectsUnknownScheme(t *testing.T) {
	if _, err := RunCrash(CrashConfig{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
