package netsim

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/shortestpath"
)

// hookFunc adapts a function to FaultHook for tests.
type hookFunc func(id uint64, node, hops int) HopFault

func (f hookFunc) OnHop(id uint64, node, hops int) HopFault { return f(id, node, hops) }

// square returns the 4-cycle 1-2-4-3-1 with sorted ports.
func square(t *testing.T) (*graph.Graph, *graph.Ports) {
	t.Helper()
	g := graph.MustNew(4)
	for _, e := range [][2]int{{1, 2}, {2, 4}, {4, 3}, {3, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, graph.SortedPorts(g)
}

func TestDropThenRetryRecovers(t *testing.T) {
	g, ports := randomNet(t, 16, 11)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	// Drop attempt 0's message wherever it is; the retry carries a fresh
	// message ID and passes.
	src, dst := 1, 9
	attempt0 := msgID(src, dst, 0)
	nw, err := New(g, ports, s, Options{
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond, Jitter: 0.5},
		Hook: hookFunc(func(id uint64, node, hops int) HopFault {
			return HopFault{Drop: id == attempt0}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	tr, err := nw.Send(src, dst)
	if err != nil {
		t.Fatalf("send with retry: %v", err)
	}
	if tr == nil || tr.Dest != dst {
		t.Fatalf("trace = %+v", tr)
	}
	st := nw.Stats()
	if st.Retries != 1 || st.Dropped != 1 || st.Delivered != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 1 retry, 1 drop, 1 delivered", st)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	g, ports := randomNet(t, 16, 12)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond},
		Hook: hookFunc(func(uint64, int, int) HopFault {
			return HopFault{Drop: true}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.Send(1, 5); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	st := nw.Stats()
	if st.Retries != 2 || st.Dropped != 3 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 3 drops, 1 failed", st)
	}
}

func TestLogicalTickTimeout(t *testing.T) {
	g, ports := randomNet(t, 16, 13)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		TimeoutTicks: 3,
		Hook: hookFunc(func(uint64, int, int) HopFault {
			return HopFault{DelayTicks: 10} // every hop blows the budget
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// A distance ≥ 2 pair needs a second hop, which arrives past the budget.
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 16; u++ {
		for v := 1; v <= 16; v++ {
			if dm.Dist(u, v) >= 2 {
				if _, err := nw.Send(u, v); !errors.Is(err, ErrTimeout) {
					t.Fatalf("err = %v, want ErrTimeout", err)
				}
				if nw.Stats().TimedOut == 0 {
					t.Fatal("timeout not counted")
				}
				return
			}
		}
	}
	t.Skip("no distance-2 pair in sample")
}

func TestDegradedDetourRoutesAroundDownLink(t *testing.T) {
	g, ports := square(t)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	tr, err := nw.Send(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Path[1]
	if err := nw.SetLinkDown(1, first, true); err != nil {
		t.Fatal(err)
	}
	tr, err = nw.Send(1, 4)
	if err != nil {
		t.Fatalf("degraded send: %v", err)
	}
	other := 2 + 3 - first // the square's other middle node
	if len(tr.Path) < 2 || tr.Path[1] != other {
		t.Fatalf("detour path = %v, want via %d", tr.Path, other)
	}
	st := nw.Stats()
	if st.DetourHops == 0 {
		t.Fatalf("stats = %+v, want detour hops > 0", st)
	}
}

func TestDetourLinkAlsoDownFails(t *testing.T) {
	// Both of node 1's links die: degraded mode has no live neighbour, and
	// full-information failover must fail the same way.
	g, ports := square(t)
	for _, build := range []func() (routing.Scheme, error){
		func() (routing.Scheme, error) { return fulltable.Build(g, ports) },
		func() (routing.Scheme, error) {
			dm, err := shortestpath.AllPairs(g)
			if err != nil {
				return nil, err
			}
			return fullinfo.Build(g, ports, dm)
		},
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(g, ports, s, Options{Degraded: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.SetLinkDown(1, 2, true); err != nil {
			t.Fatal(err)
		}
		if err := nw.SetLinkDown(1, 3, true); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Send(1, 4); !errors.Is(err, ErrLinkDown) {
			t.Fatalf("%s: err = %v, want ErrLinkDown", s.Name(), err)
		}
		// Repair one link: the detour (or failover) works again.
		if err := nw.SetLinkDown(1, 3, false); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Send(1, 4); err != nil {
			t.Fatalf("%s: after repair: %v", s.Name(), err)
		}
		nw.Close()
	}
}

func TestDetourBudgetExhausted(t *testing.T) {
	g, ports := square(t)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{Degraded: true, MaxDetours: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// 1→4 must cross to the far corner; with both middle links to 4 down the
	// message keeps detouring between 2 and 3 until the budget dies.
	if err := nw.SetLinkDown(2, 4, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLinkDown(3, 4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown (budget exhausted)", err)
	}
}

func TestNodeCrashAndRecovery(t *testing.T) {
	g, ports := square(t)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	tr, err := nw.Send(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Path[1]
	if err := nw.SetNodeDown(mid, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrNodeDown or ErrLinkDown", err)
	}
	// A crashed destination loses the message too.
	if err := nw.SetNodeDown(mid, false); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetNodeDown(4, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); err == nil {
		t.Fatal("send to crashed destination succeeded")
	}
	if err := nw.SetNodeDown(4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	// A crashed source loses the message in its own event loop — the one
	// place a message is handled at a crashed node (neighbours otherwise
	// detect the crash as a blocked link before forwarding).
	if err := nw.SetNodeDown(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("crashed source: err = %v, want ErrNodeDown", err)
	}
	if nw.Stats().Crashed == 0 {
		t.Fatal("crash losses not counted")
	}
	if err := nw.SetNodeDown(0, true); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestCrashedNeighborTriggersDegradedDetour(t *testing.T) {
	g, ports := square(t)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	tr, err := nw.Send(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Path[1]
	if err := nw.SetNodeDown(mid, true); err != nil {
		t.Fatal(err)
	}
	tr, err = nw.Send(1, 4)
	if err != nil {
		t.Fatalf("degraded send around crashed node: %v", err)
	}
	other := 2 + 3 - mid
	if tr.Path[1] != other {
		t.Fatalf("path = %v, want via %d", tr.Path, other)
	}
}

func TestDuplicationGhostsAreBenign(t *testing.T) {
	g, ports := randomNet(t, 24, 14)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		Hook: hookFunc(func(uint64, int, int) HopFault {
			return HopFault{Duplicate: true}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 2; dst <= 24; dst++ {
		tr, err := nw.Send(1, dst)
		if err != nil {
			t.Fatalf("1→%d: %v", dst, err)
		}
		if tr.Hops != dm.Dist(1, dst) {
			t.Fatalf("1→%d: %d hops, want %d (ghosts must not alter routing)", dst, tr.Hops, dm.Dist(1, dst))
		}
	}
	nw.Quiesce()
	st := nw.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no ghosts spawned")
	}
	if st.Delivered != 23 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeterministicOutcomesUnderFaults(t *testing.T) {
	// Identical seeds ⇒ identical per-pair outcomes and identical quiesced
	// counters, run after run.
	run := func() ([]error, Stats) {
		g, ports := randomNet(t, 24, 15)
		s, err := fulltable.Build(g, ports)
		if err != nil {
			t.Fatal(err)
		}
		drop := func(id uint64, node, hops int) HopFault {
			h := mix64(id ^ uint64(hops)*977 ^ uint64(node))
			return HopFault{
				Drop:      h%5 == 0,
				Duplicate: h%7 == 0,
			}
		}
		nw, err := New(g, ports, s, Options{
			Degraded: true,
			Retry:    RetryPolicy{MaxAttempts: 2, BaseBackoff: 20 * time.Microsecond},
			Hook:     hookFunc(drop),
		})
		if err != nil {
			t.Fatal(err)
		}
		var errs []error
		for i := 0; i < 60; i++ {
			src, dst := i%24+1, (i*7+11)%24+1
			if src == dst {
				continue
			}
			_, err := nw.Send(src, dst)
			errs = append(errs, err)
		}
		nw.Quiesce()
		st := nw.Stats()
		nw.Close()
		return errs, st
	}
	errs1, st1 := run()
	errs2, st2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("stats diverged:\n  %+v\n  %+v", st1, st2)
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("outcome %d diverged: %v vs %v", i, errs1[i], errs2[i])
		}
	}
}

func TestConcurrentFlappingDuringSendMany(t *testing.T) {
	// Satellite: -race coverage for SetLinkDown/SetNodeDown storms during a
	// concurrent batch. Individual sends may fail (links really are down);
	// the batch must terminate and attribute errors per pair.
	g, ports := randomNet(t, 32, 16)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		MaxInFlight: 16,
		Degraded:    true,
		Retry:       RetryPolicy{MaxAttempts: 2, BaseBackoff: 20 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(2)
	go func() {
		defer flapWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopFlap:
				return
			default:
			}
			u := rng.Intn(32) + 1
			nb := g.Neighbors(u)
			if len(nb) == 0 {
				continue
			}
			v := nb[rng.Intn(len(nb))]
			_ = nw.SetLinkDown(u, v, rng.Intn(2) == 0)
		}
	}()
	go func() {
		defer flapWG.Done()
		rng := rand.New(rand.NewSource(101))
		for {
			select {
			case <-stopFlap:
				return
			default:
			}
			u := rng.Intn(32) + 1
			_ = nw.SetNodeDown(u, rng.Intn(4) == 0)
		}
	}()

	var pairs [][2]int
	for i := 0; i < 300; i++ {
		src, dst := i%32+1, (i*11+5)%32+1
		if src != dst {
			pairs = append(pairs, [2]int{src, dst})
		}
	}
	traces, perPair, _ := nw.SendMany(pairs)
	close(stopFlap)
	flapWG.Wait()
	if len(traces) != len(pairs) || len(perPair) != len(pairs) {
		t.Fatalf("lengths: %d traces, %d errs, %d pairs", len(traces), len(perPair), len(pairs))
	}
	ok := 0
	for i := range pairs {
		if perPair[i] == nil {
			if traces[i] == nil {
				t.Fatalf("pair %d delivered without trace", i)
			}
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("every send failed under light flapping")
	}
}

func TestCloseRacesInflightSends(t *testing.T) {
	// Satellite: Close while sends are mid-flight must neither hang nor
	// panic; late sends observe ErrClosed.
	g, ports := randomNet(t, 24, 17)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		MaxInFlight: 8,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
		Hook: hookFunc(func(id uint64, node, hops int) HopFault {
			return HopFault{Drop: mix64(id)%3 == 0} // force some retries
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, dst := i%24+1, (i*5+3)%24+1
			if src == dst {
				return
			}
			_, _ = nw.Send(src, dst)
		}()
	}
	time.Sleep(500 * time.Microsecond)
	nw.Close()
	wg.Wait()
	if _, err := nw.Send(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestCongestedForwardDoesNotStallOtherTraffic(t *testing.T) {
	// Satellite: head-of-line blocking. Tiny inboxes plus aggressive ghost
	// duplication overflow hot nodes; the bounded forward wait must keep
	// every send terminating (as ErrCongested at worst) instead of wedging a
	// node's event loop forever.
	g, ports := randomNet(t, 24, 18)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{
		MaxInFlight:    2,
		ForwardTimeout: 200 * time.Microsecond,
		Hook: hookFunc(func(uint64, int, int) HopFault {
			return HopFault{Duplicate: true}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var pairs [][2]int
	for i := 0; i < 200; i++ {
		src, dst := i%24+1, (i*13+7)%24+1
		if src != dst {
			pairs = append(pairs, [2]int{src, dst})
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = nw.SendMany(pairs)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SendMany stalled: head-of-line blocking")
	}
}
