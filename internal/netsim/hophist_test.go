package netsim

import (
	"testing"

	"routetab/internal/schemes/fulltable"
	"routetab/internal/shortestpath"
)

// TestHopHistogram: on a healthy network with a shortest-path scheme the
// hop-count histogram must match the exact per-pair distances, and the
// derived mean/quantile figures must agree with the counters.
func TestHopHistogram(t *testing.T) {
	g, ports := randomNet(t, 40, 3)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	want := map[int]uint64{}
	var delivered uint64
	for src := 1; src <= 40; src += 3 {
		for dst := 1; dst <= 40; dst += 2 {
			if src == dst {
				continue
			}
			if _, err := nw.Send(src, dst); err != nil {
				t.Fatalf("%d→%d: %v", src, dst, err)
			}
			want[dm.Dist(src, dst)]++
			delivered++
		}
	}
	nw.Quiesce()
	st := nw.Stats()
	if st.Delivered != delivered {
		t.Fatalf("delivered %d, want %d", st.Delivered, delivered)
	}
	var histTotal uint64
	for h, c := range st.HopHist {
		histTotal += c
		if c != want[h] {
			t.Errorf("hops=%d: hist %d, want %d", h, c, want[h])
		}
	}
	if histTotal != delivered {
		t.Fatalf("histogram mass %d, want %d", histTotal, delivered)
	}

	if got, counter := st.MeanHops(), float64(st.HopsTotal)/float64(st.Delivered); got != counter {
		t.Fatalf("MeanHops %v != HopsTotal/Delivered %v", got, counter)
	}
	// p100 is the max observed hop count; every delivery must fit below it.
	max := st.HopQuantile(1.0)
	if max < 1 || want[max] == 0 {
		t.Fatalf("p100 = %d (hist %v)", max, st.HopHist)
	}
	if p50 := st.HopQuantile(0.5); p50 < 1 || p50 > max {
		t.Fatalf("p50 = %d out of range (max %d)", p50, max)
	}
}

// TestHopHistogramEmpty: quantiles on a fresh network are well-defined.
func TestHopHistogramEmpty(t *testing.T) {
	g, ports := randomNet(t, 16, 5)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	st := nw.Stats()
	if st.MeanHops() != 0 {
		t.Fatalf("mean = %v on empty network", st.MeanHops())
	}
	if q := st.HopQuantile(0.99); q != -1 {
		t.Fatalf("quantile = %d on empty network", q)
	}
}
