package netsim_test

import (
	"fmt"
	"math/rand"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/netsim"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/shortestpath"
)

// Example_failover runs a full-information scheme on the concurrent carrier
// and reroutes around an injected link failure.
func Example_failover() {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(3)))
	if err != nil {
		fmt.Println(err)
		return
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	scheme, err := fullinfo.Build(g, ports, dm)
	if err != nil {
		fmt.Println(err)
		return
	}
	nw, err := netsim.New(g, ports, scheme, netsim.Options{MaxInFlight: 8})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer nw.Close()

	// Pick a distance-2 destination so an alternative path exists.
	dst := 0
	for v := 2; v <= 32; v++ {
		if dm.Dist(1, v) == 2 {
			dst = v
			break
		}
	}
	tr, err := nw.Send(1, dst)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("hops before failure:", tr.Hops)
	if err := nw.SetLinkDown(tr.Path[0], tr.Path[1], true); err != nil {
		fmt.Println(err)
		return
	}
	tr, err = nw.Send(1, dst)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("hops after failure:", tr.Hops)
	// Output:
	// hops before failure: 2
	// hops after failure: 2
}
