// Package netsim runs routing schemes on a concurrent message-passing
// network: one goroutine per node, port-addressed links, bounded in-flight
// messages, and fault injection (link failures, node crashes, per-hop drops,
// delays, and duplication via a pluggable FaultHook).
//
// Where internal/routing.Sim is the single-message reference carrier, netsim
// is the "does this actually work as a distributed system" harness: nodes
// only ever see their own routing function, their ports, and arriving
// messages. Full-information schemes (Theorem 10) additionally survive link
// failures by taking alternative shortest-path edges — the capability the
// paper says such schemes exist for. For schemes without that capability the
// network offers a graceful-degradation mode: a bounded detour via any live
// neighbour, sound on the diameter-2 Kolmogorov-random graphs of Lemma 2,
// with the stretch inflation recorded in Stats.DetourHops.
//
// Determinism: every fault decision a hook makes is keyed on a message ID
// that is a pure function of (source, destination, attempt), never on
// wall-clock time or goroutine scheduling. Loss is therefore reported to the
// sender as a deterministic signal (ErrDropped / ErrTimeout on a logical
// tick budget) rather than by racing a timer, so identical seeds and fault
// plans reproduce identical outcomes. The wall-clock Timeout option exists
// only as a safety net.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"routetab/internal/graph"
	"routetab/internal/routing"
)

// Errors.
var (
	// ErrClosed indicates a Send on a closed network.
	ErrClosed = errors.New("netsim: network closed")
	// ErrLinkDown indicates a forward over a failed link with no failover
	// (and, in degraded mode, no live detour either).
	ErrLinkDown = errors.New("netsim: link down")
	// ErrHopLimit indicates the TTL expired.
	ErrHopLimit = errors.New("netsim: hop limit exceeded")
	// ErrNodeDown indicates the message reached a crashed node.
	ErrNodeDown = errors.New("netsim: node down")
	// ErrDropped indicates the message was dropped by fault injection.
	ErrDropped = errors.New("netsim: message dropped")
	// ErrTimeout indicates a per-send deadline (logical ticks or wall clock)
	// expired before delivery.
	ErrTimeout = errors.New("netsim: send timed out")
	// ErrCongested indicates a forward gave up after the bounded wait on a
	// full inbox (head-of-line protection).
	ErrCongested = errors.New("netsim: inbox congested")
)

// IsTransient reports whether err is a failure a retry may recover from:
// drops, timeouts, congestion, crashed nodes, and down links (which may flap
// back up). Routing errors (no route, TTL) are permanent.
func IsTransient(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrCongested) || errors.Is(err, ErrNodeDown) ||
		errors.Is(err, ErrLinkDown)
}

// Failover is implemented by schemes that can route around excluded ports
// (full-information shortest-path schemes).
type Failover interface {
	RouteAvoiding(u, dest int, down map[int]bool) (int, error)
}

// HopFault is a fault hook's verdict for one forwarding decision.
type HopFault struct {
	// Drop discards the message at this hop (the sender is notified with
	// ErrDropped — a deterministic stand-in for a detected loss).
	Drop bool
	// DelayTicks adds logical latency to this hop; it counts against
	// Options.TimeoutTicks but consumes no wall-clock time.
	DelayTicks int
	// Duplicate forwards a ghost copy of the message alongside the original.
	// Ghosts load the network (inboxes, hook decisions, counters) but never
	// resolve the send, so outcomes stay deterministic — modelling the real
	// effect of duplicates on an idempotent receiver: wasted bandwidth.
	Duplicate bool
}

// FaultHook is the narrow interface a fault-injection engine implements to
// perturb per-hop message handling. OnHop is called once per forwarding
// decision with the message's deterministic ID, the current node, and the
// hop count; it must be safe for concurrent use and — for reproducible
// experiments — a pure function of its arguments.
type FaultHook interface {
	OnHop(msgID uint64, node, hops int) HopFault
}

// RetryPolicy is the sender-side retry configuration.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (≤ 1 means no retries).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry (default 200µs); each
	// further retry doubles it up to MaxBackoff (default 10ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter in [0,1] scales a deterministic per-(pair,attempt) perturbation
	// of the backoff: wait × (1 ± Jitter/2). Timing only — never outcomes.
	Jitter float64
}

// Options configures a network.
type Options struct {
	// MaxInFlight bounds concurrently travelling messages (default 64); it
	// also sizes every node's inbox, so sends never deadlock.
	MaxInFlight int
	// HopLimit is the per-message TTL (default routing.DefaultHopLimit(n)).
	HopLimit int
	// TimeoutTicks is the per-send deadline on the logical clock: each hop
	// costs 1 tick plus any hook-injected delay. 0 disables it. Because the
	// clock is logical, tick timeouts are deterministic.
	TimeoutTicks int
	// Timeout is a wall-clock per-send safety net (0 disables it). Prefer
	// TimeoutTicks for reproducible experiments.
	Timeout time.Duration
	// Retry enables sender-side retries with exponential backoff for
	// transient failures (see IsTransient).
	Retry RetryPolicy
	// Degraded enables graceful degradation: when the routed port's link is
	// down and the scheme has no Failover (or its failover fails), take a
	// bounded detour via any live neighbour instead of failing.
	Degraded bool
	// MaxDetours bounds degraded detours per message (default 8).
	MaxDetours int
	// ForwardTimeout bounds how long a node waits to forward into a full
	// inbox before failing the message with ErrCongested (default 5ms), so
	// one congested node cannot stall unrelated traffic.
	ForwardTimeout time.Duration
	// Hook receives per-hop fault-injection callbacks (may be nil).
	Hook FaultHook
}

// maxDuplicates caps hook-driven duplication along one message lineage.
const maxDuplicates = 2

type message struct {
	id      uint64
	dest    routing.Label
	hdr     uint64
	arrival int
	hops    int
	ticks   int
	detours int
	dups    int
	ghost   bool
	path    []int
	done    chan result
}

type result struct {
	trace *routing.Trace
	err   error
}

// finish resolves the send, first result wins. Ghost copies never resolve.
func (m *message) finish(res result) {
	if m.ghost {
		return
	}
	select {
	case m.done <- res:
	default:
	}
}

// Stats are cumulative network counters.
type Stats struct {
	Delivered, Failed uint64
	HopsTotal         uint64
	// HopHist is the delivery-latency histogram: HopHist[h] counts messages
	// delivered in exactly h hops (index HopLimit aggregates anything at or
	// beyond the TTL, which only retried deliveries can reach). Failed sends
	// are not recorded — latency is a property of deliveries.
	HopHist []uint64
	// Retries counts sender-side retry attempts.
	Retries uint64
	// Dropped counts messages discarded in flight (fault-injected drops and
	// congestion drops), ghost copies included.
	Dropped uint64
	// TimedOut counts sends that exceeded TimeoutTicks or Timeout.
	TimedOut uint64
	// DetourHops counts degraded-mode detour hops (stretch inflation).
	DetourHops uint64
	// Crashed counts messages lost at crashed nodes.
	Crashed uint64
	// Duplicated counts ghost copies spawned by fault injection.
	Duplicated uint64
}

// MeanHops is the average delivery latency in hops (0 when nothing was
// delivered).
func (s Stats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopsTotal) / float64(s.Delivered)
}

// HopQuantile returns the smallest hop count h such that at least q of the
// delivered messages arrived in ≤ h hops (q in (0,1]; -1 when nothing was
// delivered).
func (s Stats) HopQuantile(q float64) int {
	if s.Delivered == 0 || len(s.HopHist) == 0 {
		return -1
	}
	rank := uint64(q * float64(s.Delivered))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for h, c := range s.HopHist {
		cum += c
		if cum >= rank {
			return h
		}
	}
	return len(s.HopHist) - 1
}

// Network is a running simulation.
type Network struct {
	g       *graph.Graph
	ports   *graph.Ports
	scheme  routing.Scheme
	grantII bool
	labels  map[int]int
	opts    Options

	inboxes []chan *message
	stop    chan struct{}
	wg      sync.WaitGroup
	sem     chan struct{}
	closed  atomic.Bool
	msgs    sync.WaitGroup // in-flight messages, ghosts included

	mu       sync.RWMutex
	down     map[int]bool // edge index → down
	downNode map[int]bool // node → crashed

	delivered  atomic.Uint64
	failed     atomic.Uint64
	hopsTotal  atomic.Uint64
	hopHist    []atomic.Uint64 // index = delivery hops, last bucket = ≥ HopLimit
	retries    atomic.Uint64
	dropped    atomic.Uint64
	timedOut   atomic.Uint64
	detourHops atomic.Uint64
	crashed    atomic.Uint64
	duplicated atomic.Uint64
}

// New validates the pieces, starts one goroutine per node, and returns the
// network. Callers must Close it.
func New(g *graph.Graph, ports *graph.Ports, scheme routing.Scheme, opts Options) (*Network, error) {
	if scheme.N() != g.N() {
		return nil, fmt.Errorf("netsim: scheme for n=%d used with n=%d", scheme.N(), g.N())
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 64
	}
	if opts.HopLimit <= 0 {
		opts.HopLimit = routing.DefaultHopLimit(g.N())
	}
	if opts.MaxDetours <= 0 {
		opts.MaxDetours = 8
	}
	if opts.ForwardTimeout <= 0 {
		opts.ForwardTimeout = 5 * time.Millisecond
	}
	if opts.Retry.MaxAttempts < 1 {
		opts.Retry.MaxAttempts = 1
	}
	if opts.Retry.BaseBackoff <= 0 {
		opts.Retry.BaseBackoff = 200 * time.Microsecond
	}
	if opts.Retry.MaxBackoff <= 0 {
		opts.Retry.MaxBackoff = 10 * time.Millisecond
	}
	req := scheme.Requirements()
	labels := make(map[int]int, g.N())
	for u := 1; u <= g.N(); u++ {
		labels[scheme.Label(u).ID] = u
	}
	if len(labels) != g.N() {
		return nil, fmt.Errorf("netsim: scheme %s assigns non-unique label IDs", scheme.Name())
	}
	nw := &Network{
		g:        g,
		ports:    ports,
		scheme:   scheme,
		grantII:  req.NeighborsKnown || req.NeighborsOrFreePorts,
		labels:   labels,
		opts:     opts,
		inboxes:  make([]chan *message, g.N()+1),
		stop:     make(chan struct{}),
		sem:      make(chan struct{}, opts.MaxInFlight),
		down:     make(map[int]bool),
		downNode: make(map[int]bool),
	}
	nw.hopHist = make([]atomic.Uint64, opts.HopLimit+1)
	for u := 1; u <= g.N(); u++ {
		nw.inboxes[u] = make(chan *message, opts.MaxInFlight)
	}
	for u := 1; u <= g.N(); u++ {
		u := u
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			nw.runNode(u)
		}()
	}
	return nw, nil
}

// Close stops every node goroutine and waits for them to exit. Further Sends
// fail with ErrClosed; in-flight messages are abandoned.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	close(nw.stop)
	nw.wg.Wait()
}

// Quiesce blocks until every in-flight message — ghost duplicates included —
// has terminated. Call it before reading Stats in deterministic experiments,
// and only while no new Sends are being issued. Must not be called after
// Close (abandoned messages never terminate).
func (nw *Network) Quiesce() {
	nw.msgs.Wait()
}

// SetLinkDown marks the undirected link uv failed (or repaired).
func (nw *Network) SetLinkDown(u, v int, isDown bool) error {
	idx, err := graph.EdgeIndex(nw.g.N(), u, v)
	if err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if !nw.g.HasEdge(u, v) {
		return fmt.Errorf("netsim: %d-%d is not a link", u, v)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if isDown {
		nw.down[idx] = true
	} else {
		delete(nw.down, idx)
	}
	return nil
}

// SetNodeDown crashes (or recovers) node u: a crashed node loses every
// message it handles and its incident links count as blocked for neighbours.
func (nw *Network) SetNodeDown(u int, isDown bool) error {
	if u < 1 || u > nw.g.N() {
		return fmt.Errorf("netsim: bad node %d", u)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if isDown {
		nw.downNode[u] = true
	} else {
		delete(nw.downNode, u)
	}
	return nil
}

func (nw *Network) linkDown(u, v int) bool {
	idx, err := graph.EdgeIndex(nw.g.N(), u, v)
	if err != nil {
		return false
	}
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.down[idx]
}

func (nw *Network) nodeDown(u int) bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.downNode[u]
}

// blocked reports whether the hop u→v is unusable: the link failed, or the
// neighbour v is crashed (neighbour liveness is local knowledge — real
// routers detect it via keepalives).
func (nw *Network) blocked(u, v int) bool {
	idx, err := graph.EdgeIndex(nw.g.N(), u, v)
	if err != nil {
		return false
	}
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.down[idx] || nw.downNode[v]
}

// mix64 is the SplitMix64 finaliser: the deterministic hash behind message
// IDs and backoff jitter.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// msgID derives the deterministic message identity fault hooks key on.
func msgID(src, dest, attempt int) uint64 {
	return mix64(mix64(uint64(src))<<1 ^ mix64(uint64(dest)) ^ uint64(attempt))
}

// ghostID derives a distinct identity for a duplicated copy.
func ghostID(id uint64) uint64 { return mix64(id ^ 0xD1B54A32D192ED03) }

// Send injects a message at src addressed to destNode's label and blocks
// until delivery, failure, or deadline; transient failures are retried per
// Options.Retry with exponential backoff and deterministic jitter.
func (nw *Network) Send(src, destNode int) (*routing.Trace, error) {
	if nw.closed.Load() {
		return nil, ErrClosed
	}
	if src < 1 || src > nw.g.N() || destNode < 1 || destNode > nw.g.N() {
		return nil, fmt.Errorf("netsim: bad pair (%d,%d)", src, destNode)
	}
	select {
	case nw.sem <- struct{}{}:
	case <-nw.stop:
		return nil, ErrClosed
	}
	defer func() { <-nw.sem }()

	var (
		lastTrace *routing.Trace
		lastErr   error
	)
	for attempt := 0; attempt < nw.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			nw.retries.Add(1)
			if err := nw.backoff(src, destNode, attempt); err != nil {
				return lastTrace, err
			}
		}
		tr, err := nw.sendOnce(src, destNode, attempt)
		if err == nil {
			nw.delivered.Add(1)
			nw.hopsTotal.Add(uint64(tr.Hops))
			h := tr.Hops
			if h >= len(nw.hopHist) {
				h = len(nw.hopHist) - 1
			}
			nw.hopHist[h].Add(1)
			return tr, nil
		}
		if errors.Is(err, ErrClosed) {
			return tr, err
		}
		lastTrace, lastErr = tr, err
		if !IsTransient(err) {
			break
		}
	}
	nw.failed.Add(1)
	return lastTrace, lastErr
}

// sendOnce runs one delivery attempt.
func (nw *Network) sendOnce(src, destNode, attempt int) (*routing.Trace, error) {
	msg := &message{
		id:   msgID(src, destNode, attempt),
		dest: nw.scheme.Label(destNode),
		path: []int{src},
		done: make(chan result, 1),
	}
	var deadline <-chan time.Time
	if nw.opts.Timeout > 0 {
		timer := time.NewTimer(nw.opts.Timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	nw.msgs.Add(1)
	select {
	case nw.inboxes[src] <- msg:
	case <-nw.stop:
		nw.msgs.Done()
		return nil, ErrClosed
	case <-deadline:
		nw.msgs.Done()
		nw.timedOut.Add(1)
		return nil, fmt.Errorf("%w: enqueue at %d", ErrTimeout, src)
	}
	select {
	case res := <-msg.done:
		return res.trace, res.err
	case <-deadline:
		nw.timedOut.Add(1)
		return nil, fmt.Errorf("%w: after %v", ErrTimeout, nw.opts.Timeout)
	case <-nw.stop:
		return nil, ErrClosed
	}
}

// backoff sleeps before retry `attempt` (≥ 1): BaseBackoff·2^(attempt−1)
// capped at MaxBackoff, scaled by a deterministic jitter in [1−J/2, 1+J/2].
func (nw *Network) backoff(src, dest, attempt int) error {
	p := nw.opts.Retry
	d := p.BaseBackoff << uint(attempt-1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		u := float64(mix64(msgID(src, dest, attempt))>>11) / (1 << 53) // [0,1)
		d = time.Duration(float64(d) * (1 + p.Jitter*(u-0.5)))
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-nw.stop:
		return ErrClosed
	}
}

// Stats returns a snapshot of the cumulative counters.
func (nw *Network) Stats() Stats {
	hist := make([]uint64, len(nw.hopHist))
	for i := range nw.hopHist {
		hist[i] = nw.hopHist[i].Load()
	}
	return Stats{
		Delivered:  nw.delivered.Load(),
		Failed:     nw.failed.Load(),
		HopsTotal:  nw.hopsTotal.Load(),
		HopHist:    hist,
		Retries:    nw.retries.Load(),
		Dropped:    nw.dropped.Load(),
		TimedOut:   nw.timedOut.Load(),
		DetourHops: nw.detourHops.Load(),
		Crashed:    nw.crashed.Load(),
		Duplicated: nw.duplicated.Load(),
	}
}

// runNode is the per-node event loop: strictly local state only.
func (nw *Network) runNode(u int) {
	inbox := nw.inboxes[u]
	for {
		select {
		case <-nw.stop:
			return
		case msg := <-inbox:
			nw.handle(u, msg)
		}
	}
}

// terminate ends a message's life: resolve the send (no-op for ghosts) and
// release the in-flight tracker.
func (nw *Network) terminate(msg *message, res result) {
	msg.finish(res)
	nw.msgs.Done()
}

func (nw *Network) handle(u int, msg *message) {
	if nw.nodeDown(u) {
		nw.crashed.Add(1)
		nw.terminate(msg, result{trace: msg.trace(u), err: fmt.Errorf("%w: node %d", ErrNodeDown, u)})
		return
	}
	if msg.dest.ID == nw.scheme.Label(u).ID {
		nw.terminate(msg, result{trace: msg.trace(u)})
		return
	}
	if msg.hops >= nw.opts.HopLimit {
		nw.terminate(msg, result{trace: msg.trace(u), err: fmt.Errorf("%w: %d hops at %d", ErrHopLimit, msg.hops, u)})
		return
	}
	if nw.opts.TimeoutTicks > 0 && msg.ticks >= nw.opts.TimeoutTicks {
		nw.timedOut.Add(1)
		nw.terminate(msg, result{trace: msg.trace(u), err: fmt.Errorf("%w: %d ticks at %d", ErrTimeout, msg.ticks, u)})
		return
	}
	var fault HopFault
	if nw.opts.Hook != nil {
		fault = nw.opts.Hook.OnHop(msg.id, u, msg.hops)
		if fault.Drop {
			nw.dropped.Add(1)
			nw.terminate(msg, result{trace: msg.trace(u), err: fmt.Errorf("%w: at %d hop %d", ErrDropped, u, msg.hops)})
			return
		}
		if fault.DelayTicks < 0 {
			fault.DelayTicks = 0
		}
	}
	port, newHdr, err := nw.scheme.Route(u, nodeEnv{nw: nw, node: u}, msg.dest, msg.hdr, msg.arrival)
	if err != nil {
		nw.terminate(msg, result{trace: msg.trace(u), err: err})
		return
	}
	next, err := nw.ports.Neighbor(u, port)
	if err != nil {
		nw.terminate(msg, result{trace: msg.trace(u), err: err})
		return
	}
	detoured := false
	if nw.blocked(u, next) {
		port, next, err = nw.failover(u, msg, port)
		if err != nil {
			if !nw.opts.Degraded {
				nw.terminate(msg, result{trace: msg.trace(u), err: err})
				return
			}
			port, next, err = nw.detour(u, msg)
			if err != nil {
				nw.terminate(msg, result{trace: msg.trace(u), err: err})
				return
			}
			detoured = true
		}
	}
	backPort, err := nw.ports.PortTo(next, u)
	if err != nil {
		nw.terminate(msg, result{trace: msg.trace(u), err: err})
		return
	}
	if detoured {
		// The scheme's header update belongs to the port it chose, which we
		// did not take; the message continues with its old header.
		msg.detours++
		nw.detourHops.Add(1)
	} else {
		msg.hdr = newHdr
	}
	msg.arrival = backPort
	msg.hops++
	msg.ticks += 1 + fault.DelayTicks
	msg.path = append(msg.path, next)
	if fault.Duplicate && msg.dups < maxDuplicates {
		msg.dups++
		nw.duplicated.Add(1)
		nw.msgs.Add(1)
		nw.forward(next, msg.dup())
	}
	nw.forward(next, msg)
}

// forward enqueues msg at next with a bounded wait: if the inbox stays full
// past ForwardTimeout the message is failed with ErrCongested instead of
// stalling this node's event loop (head-of-line protection).
func (nw *Network) forward(next int, msg *message) {
	select {
	case nw.inboxes[next] <- msg:
		return
	case <-nw.stop:
		nw.msgs.Done()
		return
	default:
	}
	timer := time.NewTimer(nw.opts.ForwardTimeout)
	defer timer.Stop()
	select {
	case nw.inboxes[next] <- msg:
	case <-nw.stop:
		nw.msgs.Done()
	case <-timer.C:
		nw.dropped.Add(1)
		nw.terminate(msg, result{trace: msg.trace(msg.path[len(msg.path)-1]), err: fmt.Errorf("%w: inbox of %d full", ErrCongested, next)})
	}
}

// dup spawns a ghost copy for fault-injected duplication (see HopFault).
func (m *message) dup() *message {
	path := make([]int, len(m.path))
	copy(path, m.path)
	c := *m
	c.id = ghostID(m.id)
	c.ghost = true
	c.path = path
	return &c
}

// detour implements graceful degradation: pick the first live port at u,
// preferring one that does not bounce the message straight back, bounded by
// MaxDetours per message. On diameter-2 c·log n-random graphs (Lemma 2) any
// live neighbour is ≤ 2 hops from the destination, so detours stay sound.
func (nw *Network) detour(u int, msg *message) (port, next int, err error) {
	if msg.detours >= nw.opts.MaxDetours {
		return 0, 0, fmt.Errorf("%w: %d detours exhausted at %d", ErrLinkDown, msg.detours, u)
	}
	prev := 0
	if len(msg.path) >= 2 {
		prev = msg.path[len(msg.path)-2]
	}
	fallback := 0
	fallbackNext := 0
	for p := 1; p <= nw.ports.Degree(u); p++ {
		v, nerr := nw.ports.Neighbor(u, p)
		if nerr != nil {
			return 0, 0, nerr
		}
		if nw.blocked(u, v) {
			continue
		}
		if v == prev {
			if fallback == 0 {
				fallback, fallbackNext = p, v
			}
			continue
		}
		return p, v, nil
	}
	if fallback != 0 {
		return fallback, fallbackNext, nil
	}
	return 0, 0, fmt.Errorf("%w: no live neighbour at %d", ErrLinkDown, u)
}

// failover reroutes around blocked links when the scheme supports it.
func (nw *Network) failover(u int, msg *message, triedPort int) (int, int, error) {
	fo, ok := nw.scheme.(Failover)
	if !ok {
		return 0, 0, fmt.Errorf("%w: at %d port %d", ErrLinkDown, u, triedPort)
	}
	destNode, ok := nw.labels[msg.dest.ID]
	if !ok {
		return 0, 0, fmt.Errorf("%w: unknown destination", ErrLinkDown)
	}
	downPorts := make(map[int]bool)
	for p := 1; p <= nw.ports.Degree(u); p++ {
		v, err := nw.ports.Neighbor(u, p)
		if err != nil {
			return 0, 0, err
		}
		if nw.blocked(u, v) {
			downPorts[p] = true
		}
	}
	port, err := fo.RouteAvoiding(u, destNode, downPorts)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrLinkDown, err)
	}
	next, err := nw.ports.Neighbor(u, port)
	if err != nil {
		return 0, 0, err
	}
	return port, next, nil
}

func (m *message) trace(end int) *routing.Trace {
	path := make([]int, len(m.path))
	copy(path, m.path)
	return &routing.Trace{
		Source: path[0],
		Dest:   end,
		Path:   path,
		Hops:   len(path) - 1,
	}
}

// nodeEnv is the strictly local environment handed to routing functions.
type nodeEnv struct {
	nw   *Network
	node int
}

var _ routing.Env = nodeEnv{}

func (e nodeEnv) Node() int   { return e.node }
func (e nodeEnv) Degree() int { return e.nw.ports.Degree(e.node) }

func (e nodeEnv) NeighborLabelByPort(port int) (routing.Label, bool) {
	if !e.nw.grantII {
		return routing.Label{}, false
	}
	v, err := e.nw.ports.Neighbor(e.node, port)
	if err != nil {
		return routing.Label{}, false
	}
	return e.nw.scheme.Label(v), true
}

func (e nodeEnv) PortOfNeighbor(id int) (int, bool) {
	if !e.nw.grantII {
		return 0, false
	}
	node, ok := e.nw.labels[id]
	if !ok {
		return 0, false
	}
	port, err := e.nw.ports.PortTo(e.node, node)
	if err != nil {
		return 0, false
	}
	return port, true
}

func (e nodeEnv) KnownNeighborIDs() ([]int, bool) {
	if !e.nw.grantII {
		return nil, false
	}
	nb := e.nw.g.Neighbors(e.node)
	out := make([]int, len(nb))
	for i, v := range nb {
		out[i] = e.nw.scheme.Label(v).ID
	}
	return out, true
}

// SendMany routes all pairs concurrently (bounded by MaxInFlight) and
// returns per-pair traces and errors in input order, plus their errors.Join
// aggregate, so callers can attribute exactly which pairs failed.
func (nw *Network) SendMany(pairs [][2]int) ([]*routing.Trace, []error, error) {
	traces := make([]*routing.Trace, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for i, p := range pairs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			traces[i], errs[i] = nw.Send(p[0], p[1])
		}()
	}
	wg.Wait()
	return traces, errs, errors.Join(errs...)
}
