// Package netsim runs routing schemes on a concurrent message-passing
// network: one goroutine per node, port-addressed links, bounded in-flight
// messages, and link-failure injection.
//
// Where internal/routing.Sim is the single-message reference carrier, netsim
// is the "does this actually work as a distributed system" harness: nodes
// only ever see their own routing function, their ports, and arriving
// messages. Full-information schemes (Theorem 10) additionally survive link
// failures by taking alternative shortest-path edges — the capability the
// paper says such schemes exist for.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"routetab/internal/graph"
	"routetab/internal/routing"
)

// Errors.
var (
	// ErrClosed indicates a Send on a closed network.
	ErrClosed = errors.New("netsim: network closed")
	// ErrLinkDown indicates a forward over a failed link with no failover.
	ErrLinkDown = errors.New("netsim: link down")
	// ErrHopLimit indicates the TTL expired.
	ErrHopLimit = errors.New("netsim: hop limit exceeded")
)

// Failover is implemented by schemes that can route around excluded ports
// (full-information shortest-path schemes).
type Failover interface {
	RouteAvoiding(u, dest int, down map[int]bool) (int, error)
}

// Options configures a network.
type Options struct {
	// MaxInFlight bounds concurrently travelling messages (default 64); it
	// also sizes every node's inbox, so sends never deadlock.
	MaxInFlight int
	// HopLimit is the per-message TTL (default routing.DefaultHopLimit(n)).
	HopLimit int
}

type message struct {
	dest    routing.Label
	hdr     uint64
	arrival int
	hops    int
	path    []int
	done    chan result
}

type result struct {
	trace *routing.Trace
	err   error
}

// Stats are cumulative network counters.
type Stats struct {
	Delivered, Failed uint64
	HopsTotal         uint64
}

// Network is a running simulation.
type Network struct {
	g       *graph.Graph
	ports   *graph.Ports
	scheme  routing.Scheme
	grantII bool
	labels  map[int]int
	opts    Options

	inboxes []chan *message
	stop    chan struct{}
	wg      sync.WaitGroup
	sem     chan struct{}
	closed  atomic.Bool

	mu   sync.RWMutex
	down map[int]bool // edge index → down

	delivered atomic.Uint64
	failed    atomic.Uint64
	hopsTotal atomic.Uint64
}

// New validates the pieces, starts one goroutine per node, and returns the
// network. Callers must Close it.
func New(g *graph.Graph, ports *graph.Ports, scheme routing.Scheme, opts Options) (*Network, error) {
	if scheme.N() != g.N() {
		return nil, fmt.Errorf("netsim: scheme for n=%d used with n=%d", scheme.N(), g.N())
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 64
	}
	if opts.HopLimit <= 0 {
		opts.HopLimit = routing.DefaultHopLimit(g.N())
	}
	req := scheme.Requirements()
	labels := make(map[int]int, g.N())
	for u := 1; u <= g.N(); u++ {
		labels[scheme.Label(u).ID] = u
	}
	if len(labels) != g.N() {
		return nil, fmt.Errorf("netsim: scheme %s assigns non-unique label IDs", scheme.Name())
	}
	nw := &Network{
		g:       g,
		ports:   ports,
		scheme:  scheme,
		grantII: req.NeighborsKnown || req.NeighborsOrFreePorts,
		labels:  labels,
		opts:    opts,
		inboxes: make([]chan *message, g.N()+1),
		stop:    make(chan struct{}),
		sem:     make(chan struct{}, opts.MaxInFlight),
		down:    make(map[int]bool),
	}
	for u := 1; u <= g.N(); u++ {
		nw.inboxes[u] = make(chan *message, opts.MaxInFlight)
	}
	for u := 1; u <= g.N(); u++ {
		u := u
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			nw.runNode(u)
		}()
	}
	return nw, nil
}

// Close stops every node goroutine and waits for them to exit. Further Sends
// fail with ErrClosed; in-flight messages are abandoned.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	close(nw.stop)
	nw.wg.Wait()
}

// SetLinkDown marks the undirected link uv failed (or repaired).
func (nw *Network) SetLinkDown(u, v int, isDown bool) error {
	idx, err := graph.EdgeIndex(nw.g.N(), u, v)
	if err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if !nw.g.HasEdge(u, v) {
		return fmt.Errorf("netsim: %d-%d is not a link", u, v)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if isDown {
		nw.down[idx] = true
	} else {
		delete(nw.down, idx)
	}
	return nil
}

func (nw *Network) linkDown(u, v int) bool {
	idx, err := graph.EdgeIndex(nw.g.N(), u, v)
	if err != nil {
		return false
	}
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.down[idx]
}

// Send injects a message at src addressed to destNode's label and blocks
// until delivery or failure.
func (nw *Network) Send(src, destNode int) (*routing.Trace, error) {
	if nw.closed.Load() {
		return nil, ErrClosed
	}
	if src < 1 || src > nw.g.N() || destNode < 1 || destNode > nw.g.N() {
		return nil, fmt.Errorf("netsim: bad pair (%d,%d)", src, destNode)
	}
	select {
	case nw.sem <- struct{}{}:
	case <-nw.stop:
		return nil, ErrClosed
	}
	defer func() { <-nw.sem }()

	msg := &message{
		dest: nw.scheme.Label(destNode),
		path: []int{src},
		done: make(chan result, 1),
	}
	select {
	case nw.inboxes[src] <- msg:
	case <-nw.stop:
		return nil, ErrClosed
	}
	select {
	case res := <-msg.done:
		if res.err != nil {
			nw.failed.Add(1)
			return res.trace, res.err
		}
		nw.delivered.Add(1)
		nw.hopsTotal.Add(uint64(res.trace.Hops))
		return res.trace, nil
	case <-nw.stop:
		return nil, ErrClosed
	}
}

// Stats returns a snapshot of the cumulative counters.
func (nw *Network) Stats() Stats {
	return Stats{
		Delivered: nw.delivered.Load(),
		Failed:    nw.failed.Load(),
		HopsTotal: nw.hopsTotal.Load(),
	}
}

// runNode is the per-node event loop: strictly local state only.
func (nw *Network) runNode(u int) {
	inbox := nw.inboxes[u]
	for {
		select {
		case <-nw.stop:
			return
		case msg := <-inbox:
			nw.handle(u, msg)
		}
	}
}

func (nw *Network) handle(u int, msg *message) {
	if msg.dest.ID == nw.scheme.Label(u).ID {
		msg.done <- result{trace: msg.trace(u)}
		return
	}
	if msg.hops >= nw.opts.HopLimit {
		msg.done <- result{trace: msg.trace(u), err: fmt.Errorf("%w: %d hops at %d", ErrHopLimit, msg.hops, u)}
		return
	}
	port, newHdr, err := nw.scheme.Route(u, nodeEnv{nw: nw, node: u}, msg.dest, msg.hdr, msg.arrival)
	if err != nil {
		msg.done <- result{trace: msg.trace(u), err: err}
		return
	}
	next, err := nw.ports.Neighbor(u, port)
	if err != nil {
		msg.done <- result{trace: msg.trace(u), err: err}
		return
	}
	if nw.linkDown(u, next) {
		port, next, err = nw.failover(u, msg, port)
		if err != nil {
			msg.done <- result{trace: msg.trace(u), err: err}
			return
		}
	}
	backPort, err := nw.ports.PortTo(next, u)
	if err != nil {
		msg.done <- result{trace: msg.trace(u), err: err}
		return
	}
	msg.hdr = newHdr
	msg.arrival = backPort
	msg.hops++
	msg.path = append(msg.path, next)
	select {
	case nw.inboxes[next] <- msg:
	case <-nw.stop:
	}
}

// failover reroutes around down links when the scheme supports it.
func (nw *Network) failover(u int, msg *message, triedPort int) (int, int, error) {
	fo, ok := nw.scheme.(Failover)
	if !ok {
		return 0, 0, fmt.Errorf("%w: at %d port %d", ErrLinkDown, u, triedPort)
	}
	destNode, ok := nw.labels[msg.dest.ID]
	if !ok {
		return 0, 0, fmt.Errorf("%w: unknown destination", ErrLinkDown)
	}
	downPorts := make(map[int]bool)
	for p := 1; p <= nw.ports.Degree(u); p++ {
		v, err := nw.ports.Neighbor(u, p)
		if err != nil {
			return 0, 0, err
		}
		if nw.linkDown(u, v) {
			downPorts[p] = true
		}
	}
	port, err := fo.RouteAvoiding(u, destNode, downPorts)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrLinkDown, err)
	}
	next, err := nw.ports.Neighbor(u, port)
	if err != nil {
		return 0, 0, err
	}
	return port, next, nil
}

func (m *message) trace(end int) *routing.Trace {
	path := make([]int, len(m.path))
	copy(path, m.path)
	return &routing.Trace{
		Source: path[0],
		Dest:   end,
		Path:   path,
		Hops:   len(path) - 1,
	}
}

// nodeEnv is the strictly local environment handed to routing functions.
type nodeEnv struct {
	nw   *Network
	node int
}

var _ routing.Env = nodeEnv{}

func (e nodeEnv) Node() int   { return e.node }
func (e nodeEnv) Degree() int { return e.nw.ports.Degree(e.node) }

func (e nodeEnv) NeighborLabelByPort(port int) (routing.Label, bool) {
	if !e.nw.grantII {
		return routing.Label{}, false
	}
	v, err := e.nw.ports.Neighbor(e.node, port)
	if err != nil {
		return routing.Label{}, false
	}
	return e.nw.scheme.Label(v), true
}

func (e nodeEnv) PortOfNeighbor(id int) (int, bool) {
	if !e.nw.grantII {
		return 0, false
	}
	node, ok := e.nw.labels[id]
	if !ok {
		return 0, false
	}
	port, err := e.nw.ports.PortTo(e.node, node)
	if err != nil {
		return 0, false
	}
	return port, true
}

func (e nodeEnv) KnownNeighborIDs() ([]int, bool) {
	if !e.nw.grantII {
		return nil, false
	}
	nb := e.nw.g.Neighbors(e.node)
	out := make([]int, len(nb))
	for i, v := range nb {
		out[i] = e.nw.scheme.Label(v).ID
	}
	return out, true
}

// SendMany routes all pairs concurrently (bounded by MaxInFlight) and
// returns per-pair traces in input order plus the first error (remaining
// pairs still complete).
func (nw *Network) SendMany(pairs [][2]int) ([]*routing.Trace, error) {
	traces := make([]*routing.Trace, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for i, p := range pairs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			traces[i], errs[i] = nw.Send(p[0], p[1])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return traces, err
		}
	}
	return traces, nil
}
