package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/interval"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/shortestpath"
)

func randomNet(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Ports) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.SortedPorts(g)
}

func TestDeliveryMatchesReferenceSim(t *testing.T) {
	g, ports := randomNet(t, 40, 1)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for src := 1; src <= 40; src += 5 {
		for dst := 1; dst <= 40; dst += 3 {
			if src == dst {
				continue
			}
			tr, err := nw.Send(src, dst)
			if err != nil {
				t.Fatalf("%d→%d: %v", src, dst, err)
			}
			if tr.Hops != dm.Dist(src, dst) {
				t.Fatalf("%d→%d: %d hops, want %d", src, dst, tr.Hops, dm.Dist(src, dst))
			}
			if err := routing.VerifyTraceIsWalk(g, tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := nw.Stats()
	if st.Delivered == 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentSends(t *testing.T) {
	g, ports := randomNet(t, 48, 2)
	s, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 500)
	for i := 0; i < 500; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := i%48 + 1
			dst := (i*7+13)%48 + 1
			if src == dst {
				return
			}
			if _, err := nw.Send(src, dst); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if nw.Stats().Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestWalkerSchemeOverNetwork(t *testing.T) {
	// The header-carrying probe walker must work on the concurrent carrier
	// too (arrival ports and headers travel with the message).
	g, ports := randomNet(t, 32, 3)
	s, err := walker.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{HopLimit: s.MaxHops()})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for dst := 2; dst <= 32; dst++ {
		tr, err := nw.Send(1, dst)
		if err != nil {
			t.Fatalf("1→%d: %v", dst, err)
		}
		if err := routing.VerifyTraceIsWalk(g, tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailoverOnFullInfo(t *testing.T) {
	// Square 1-2-4-3-1: kill link 1-2; full-info reroutes 1→4 via 3.
	g := graph.MustNew(4)
	for _, e := range [][2]int{{1, 2}, {2, 4}, {4, 3}, {3, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fullinfo.Build(g, ports, dm)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	tr, err := nw.Send(1, 4)
	if err != nil || tr.Hops != 2 {
		t.Fatalf("before failure: %v %v", tr, err)
	}
	if err := nw.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	tr, err = nw.Send(1, 4)
	if err != nil {
		t.Fatalf("after failure: %v", err)
	}
	if tr.Hops != 2 || tr.Path[1] != 3 {
		t.Fatalf("failover path = %v, want via 3", tr.Path)
	}
	// Repair and confirm the original path is available again.
	if err := nw.SetLinkDown(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDownWithoutFailoverFails(t *testing.T) {
	g, ports := randomNet(t, 16, 4)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// Kill the first hop of a known route.
	tr, err := nw.Send(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Path[1]
	if err := nw.SetLinkDown(1, first, true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 9); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if nw.Stats().Failed == 0 {
		t.Fatal("failure not counted")
	}
}

func TestSetLinkDownValidation(t *testing.T) {
	g, ports := randomNet(t, 8, 5)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if err := nw.SetLinkDown(0, 1, true); err == nil {
		t.Error("node 0 accepted")
	}
	// Non-edge (find one).
	for u := 1; u <= 8; u++ {
		for v := u + 1; v <= 8; v++ {
			if !g.HasEdge(u, v) {
				if err := nw.SetLinkDown(u, v, true); err == nil {
					t.Error("non-edge accepted")
				}
				return
			}
		}
	}
}

func TestCloseIsIdempotentAndStopsSends(t *testing.T) {
	g, ports := randomNet(t, 12, 6)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	nw.Close() // must not panic or hang
	if _, err := nw.Send(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
}

func TestNewValidation(t *testing.T) {
	g, ports := randomNet(t, 8, 7)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := randomNet(t, 9, 8)
	if _, err := New(g2, ports, s, Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	nw, err := New(g, ports, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.Send(0, 3); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := nw.Send(1, 99); err == nil {
		t.Error("bad destination accepted")
	}
	// Self-send delivers in zero hops.
	tr, err := nw.Send(3, 3)
	if err != nil || tr.Hops != 0 {
		t.Errorf("self send: %v %v", tr, err)
	}
}

func TestHopLimitEnforced(t *testing.T) {
	g, ports := randomNet(t, 16, 9)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{HopLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// Find a distance-2 pair; with TTL 1 it must fail.
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 16; u++ {
		for v := 1; v <= 16; v++ {
			if dm.Dist(u, v) == 2 {
				if _, err := nw.Send(u, v); !errors.Is(err, ErrHopLimit) {
					t.Fatalf("err = %v, want ErrHopLimit", err)
				}
				return
			}
		}
	}
	t.Skip("no distance-2 pair in sample")
}

func TestAllIISchemesOverConcurrentCarrier(t *testing.T) {
	// Every model-II construction must run correctly on the concurrent
	// carrier, not just the reference Sim.
	g, ports := randomNet(t, 40, 20)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	builders := map[string]func() (routing.Scheme, error){
		"labels": func() (routing.Scheme, error) {
			s, err := labels.Build(g, 3)
			return s, err
		},
		"centers": func() (routing.Scheme, error) {
			s, err := centers.Build(g, 1)
			return s, err
		},
		"hub": func() (routing.Scheme, error) {
			s, err := hub.Build(g, 1)
			return s, err
		},
		"interval": func() (routing.Scheme, error) {
			s, err := interval.Build(g, ports, 1)
			return s, err
		},
	}
	budgets := map[string]float64{"labels": 1, "centers": 1.5, "hub": 2, "interval": 99}
	for name, build := range builders {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nw, err := New(g, ports, s, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		worst := 0.0
		for src := 1; src <= 40; src += 3 {
			for dst := 2; dst <= 40; dst += 4 {
				if src == dst {
					continue
				}
				tr, err := nw.Send(src, dst)
				if err != nil {
					nw.Close()
					t.Fatalf("%s %d→%d: %v", name, src, dst, err)
				}
				if d := dm.Dist(src, dst); d > 0 {
					if st := float64(tr.Hops) / float64(d); st > worst {
						worst = st
					}
				}
			}
		}
		nw.Close()
		if worst > budgets[name] {
			t.Fatalf("%s: stretch %v > %v on concurrent carrier", name, worst, budgets[name])
		}
	}
}

func TestSendMany(t *testing.T) {
	g, ports := randomNet(t, 24, 30)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(g, ports, s, Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var pairs [][2]int
	for i := 0; i < 100; i++ {
		pairs = append(pairs, [2]int{i%24 + 1, (i*5+7)%24 + 1})
	}
	traces, perPair, err := nw.SendMany(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 100 || len(perPair) != 100 {
		t.Fatalf("traces = %d, errs = %d", len(traces), len(perPair))
	}
	for i, tr := range traces {
		if tr == nil || tr.Source != pairs[i][0] || tr.Dest != pairs[i][1] {
			t.Fatalf("trace %d = %+v for pair %v", i, tr, pairs[i])
		}
	}
	// Errors surface per pair and don't abort the batch.
	_, perPair, err = nw.SendMany([][2]int{{1, 2}, {0, 5}, {2, 3}})
	if err == nil {
		t.Fatal("bad pair accepted")
	}
	if perPair[0] != nil || perPair[1] == nil || perPair[2] != nil {
		t.Fatalf("per-pair errors misattributed: %v", perPair)
	}
}
