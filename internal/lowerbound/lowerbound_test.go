package lowerbound

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"routetab/internal/bitio"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/stats"
)

func gbFixture(t *testing.T, k int, seed int64) (*gengraph.GB, *routing.Sim) {
	t.Helper()
	gb, err := gengraph.RandomGB(k, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(gb.G)
	s, err := fulltable.Build(gb.G, ports)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(gb.G, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	return gb, sim
}

func TestExtractPermutationRecoversHidden(t *testing.T) {
	for _, k := range []int{3, 8, 20} {
		gb, sim := gbFixture(t, k, int64(k))
		ex, err := ExtractPermutation(gb, sim)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := VerifyExtraction(gb, ex); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantBits := stats.Log2Factorial(k)
		if math.Abs(ex.BitsPerBottomNode-wantBits) > 1e-9 {
			t.Fatalf("k=%d: bits per node = %v, want log2(k!) = %v", k, ex.BitsPerBottomNode, wantBits)
		}
		if math.Abs(ex.TotalBits-float64(k)*wantBits) > 1e-6 {
			t.Fatalf("k=%d: total = %v", k, ex.TotalBits)
		}
	}
}

func TestExtractionQuick(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk)%12 + 2
		gb, err := gengraph.RandomGB(k, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		ports := graph.SortedPorts(gb.G)
		s, err := fulltable.Build(gb.G, ports)
		if err != nil {
			return false
		}
		sim, err := routing.NewSim(gb.G, ports, s)
		if err != nil {
			return false
		}
		ex, err := ExtractPermutation(gb, sim)
		if err != nil {
			return false
		}
		return VerifyExtraction(gb, ex) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractionEntropyGrowsAsN2LogN(t *testing.T) {
	// Theorem 9: total ≈ (n/3)·log₂((n/3)!) ≈ (n²/9)·log n.
	var ns []int
	var totals []float64
	for _, k := range []int{16, 32, 64, 128} {
		gb, sim := gbFixture(t, k, int64(k))
		ex, err := ExtractPermutation(gb, sim)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, 3*k)
		totals = append(totals, ex.TotalBits)
	}
	slope, err := stats.LogLogSlope(ns, totals)
	if err != nil {
		t.Fatal(err)
	}
	// n²·log n has log-log slope slightly above 2.
	if slope < 1.9 || slope > 2.5 {
		t.Fatalf("entropy slope = %v, want ≈ 2+ (n² log n)", slope)
	}
}

func TestVerifyExtractionMismatch(t *testing.T) {
	gb, sim := gbFixture(t, 5, 1)
	ex, err := ExtractPermutation(gb, sim)
	if err != nil {
		t.Fatal(err)
	}
	ex.Perm[1], ex.Perm[2] = ex.Perm[2], ex.Perm[1]
	if err := VerifyExtraction(gb, ex); !errors.Is(err, ErrPermutationMismatch) {
		t.Fatalf("tampered extraction: err = %v", err)
	}
	ex.K = 7
	if err := VerifyExtraction(gb, ex); err == nil {
		t.Fatal("k mismatch accepted")
	}
}

func TestMeasurePortEntropy(t *testing.T) {
	n := 64
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(3)))
	pe, err := MeasurePortEntropy(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	// Entropy ≈ n·log₂((n/2)!) ≈ n²/2·log(n/2): positive and large.
	if pe.EntropyBits < float64(n*n)/4 {
		t.Fatalf("entropy = %v, want ≥ n²/4", pe.EntropyBits)
	}
	// The universal table cannot beat the permutation entropy.
	if float64(pe.TableBits) < pe.EntropyBits {
		t.Fatalf("table %d bits < entropy %v — Theorem 8 violated?", pe.TableBits, pe.EntropyBits)
	}
	// Even compressed, the tables must stay above a large fraction of the
	// entropy (flate can shave framing, not information).
	if float64(pe.CompressedBits) < 0.5*pe.EntropyBits {
		t.Fatalf("compressed %d bits < half the entropy %v", pe.CompressedBits, pe.EntropyBits)
	}
}

func TestRecoverPortAssignment(t *testing.T) {
	// Theorem 8's decoding step: tables under adversarial ports reveal the
	// whole permutation.
	g, err := gengraph.GnHalf(48, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(5)))
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverPortAssignment(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecoveredPorts(g, ports, recovered); err != nil {
		t.Fatal(err)
	}
	// Size mismatch is rejected.
	g2, err := gengraph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverPortAssignment(g2, s); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestClaim2Quick(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		k := int(kk)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, k)
		for i := range xs {
			xs[i] = rng.Intn(50) + 1
		}
		ok, err := Claim2Holds(xs)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := Claim2Holds([]int{3, 0}); err == nil {
		t.Fatal("x_i = 0 accepted")
	}
}

func TestPatternCodecRoundTrip(t *testing.T) {
	// Claim 3: the routing function plus the encoded indices reconstructs
	// the full port→neighbour table, within the Claim 2 budget.
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(7)))
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 40; u += 7 {
		codec := PatternCodec{Scheme: s, Degree: g.Degree(u), U: u}
		enc, err := codec.EncodePattern(g, ports)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Len() > Claim3Budget(40, g.Degree(u)) {
			t.Fatalf("node %d: pattern bits %d exceed Claim 2 budget %d", u, enc.Len(), Claim3Budget(40, g.Degree(u)))
		}
		got, err := codec.DecodePattern(bitio.ReaderFor(enc))
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= g.Degree(u); p++ {
			want, err := ports.Neighbor(u, p)
			if err != nil {
				t.Fatal(err)
			}
			if got[p] != want {
				t.Fatalf("node %d port %d: decoded %d, want %d", u, p, got[p], want)
			}
		}
	}
}

func TestPatternCodecBudgetIsTight(t *testing.T) {
	// Σ⌈log x_i⌉ with d ≈ n/2 groups: most groups are singletons or pairs,
	// so the pattern bits land well under n — the "additional n/2 + o(n)
	// bits" of Claim 3.
	n := 80
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for u := 1; u <= n; u++ {
		codec := PatternCodec{Scheme: s, Degree: g.Degree(u), U: u}
		enc, err := codec.EncodePattern(g, ports)
		if err != nil {
			t.Fatal(err)
		}
		total += enc.Len()
	}
	if total > n*n {
		t.Fatalf("total pattern bits %d > n²", total)
	}
}

func TestExtractionOnTrimmedFamilies(t *testing.T) {
	// The n = 3k−1 and 3k−2 variants must extract just as well.
	for drop := 1; drop <= 2; drop++ {
		perm := gengraph.RandomPermutation(9, rand.New(rand.NewSource(int64(drop))))
		gb, err := gengraph.NewGBTrimmed(9, perm, drop)
		if err != nil {
			t.Fatal(err)
		}
		ports := graph.SortedPorts(gb.G)
		s, err := fulltable.Build(gb.G, ports)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := routing.NewSim(gb.G, ports, s)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ExtractPermutation(gb, sim)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if err := VerifyExtraction(gb, ex); err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
	}
}
