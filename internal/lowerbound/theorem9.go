// Package lowerbound implements the paper's lower-bound machinery as
// executable experiments:
//
//   - Theorem 9: on the explicit Figure-1 family, the hidden permutation can
//     be reconstructed from any stretch < 2 scheme's local routing
//     functions — so those functions jointly carry k·log k bits each.
//   - Theorem 8: under a fixed adversarial port assignment (model IA ∧ α),
//     a universal routing table determines the whole port permutation, whose
//     entropy is log₂(d!) per node.
//   - Theorem 7 (Claims 2–3): given all labels, a local routing function
//     plus n/2 + o(n) bits describes a node's entire interconnection
//     pattern — implemented as a round-tripping pattern codec.
package lowerbound

import (
	"errors"
	"fmt"

	"routetab/internal/gengraph"
	"routetab/internal/routing"
	"routetab/internal/stats"
)

// Theorem 9 errors.
var (
	// ErrNotFirstHopExtractable indicates a scheme answered a bottom→top
	// query with a non-middle first hop (stretch ≥ 2 behaviour).
	ErrNotFirstHopExtractable = errors.New("lowerbound: first hop is not the unique shortest-path middle node")
	// ErrPermutationMismatch indicates extraction disagreed across bottom
	// nodes (should be impossible for stretch < 2 schemes).
	ErrPermutationMismatch = errors.New("lowerbound: extracted permutations disagree")
)

// Extraction is the Theorem 9 witness: the permutation read out of a routing
// scheme's local functions, with the entropy ledger.
type Extraction struct {
	// K is the block size (n = 3K).
	K int
	// Perm is the permutation extracted from the scheme (1-based).
	Perm []int
	// BitsPerBottomNode is log₂(k!) — the information each bottom node's
	// local function must contain (Theorem 9: k·log k − O(k)).
	BitsPerBottomNode float64
	// TotalBits is K · log₂(k!): the paper's Ω(n² log n)/9 total.
	TotalBits float64
}

// ExtractPermutation reconstructs GB's hidden permutation from the routing
// scheme under simulation, exactly as Theorem 9's proof does: for every
// bottom node v_i and every top label j, a stretch < 2 scheme must forward
// over the edge to the middle node attached to j — "by collecting the
// response of the local routing function … and grouping all pairs reached
// over the same edge" the permutation falls out.
//
// The extraction queries every bottom node and verifies they all imply the
// same permutation; the caller then compares against gb.Perm.
func ExtractPermutation(gb *gengraph.GB, sim *routing.Sim) (*Extraction, error) {
	k := gb.K
	lo, hi := gb.TopLabels()
	var agreed []int
	for b := 1; b <= gb.B; b++ {
		perm := make([]int, k+1)
		for j := lo; j <= hi; j++ {
			next, err := sim.FirstHop(b, j)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: query %d→%d: %w", b, j, err)
			}
			if !gb.IsMiddle(next) {
				return nil, fmt.Errorf("%w: %d→%d answered %d", ErrNotFirstHopExtractable, b, j, next)
			}
			slot := next - gb.B
			if perm[slot] != 0 {
				return nil, fmt.Errorf("%w: middle %d claimed twice at bottom %d", ErrPermutationMismatch, next, b)
			}
			perm[slot] = j - lo + 1
		}
		if agreed == nil {
			agreed = perm
			continue
		}
		for t := 1; t <= k; t++ {
			if perm[t] != agreed[t] {
				return nil, fmt.Errorf("%w: bottom %d disagrees at slot %d", ErrPermutationMismatch, b, t)
			}
		}
	}
	return &Extraction{
		K:                 k,
		Perm:              agreed,
		BitsPerBottomNode: stats.Log2Factorial(k),
		TotalBits:         float64(k) * stats.Log2Factorial(k),
	}, nil
}

// VerifyExtraction checks an extraction against the generator's hidden
// permutation.
func VerifyExtraction(gb *gengraph.GB, ex *Extraction) error {
	if ex.K != gb.K {
		return fmt.Errorf("lowerbound: extraction for k=%d checked against k=%d", ex.K, gb.K)
	}
	for t := 1; t <= gb.K; t++ {
		if ex.Perm[t] != gb.Perm[t] {
			return fmt.Errorf("%w: slot %d: extracted %d, hidden %d", ErrPermutationMismatch, t, ex.Perm[t], gb.Perm[t])
		}
	}
	return nil
}
