package lowerbound

import (
	"fmt"

	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/routing"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/stats"
)

// PortEntropy is the Theorem 8 ledger for one graph/port-assignment pair.
type PortEntropy struct {
	// EntropyBits is Σ_u log₂(d(u)!) — the Kolmogorov complexity an
	// adversarial port assignment can reach (the paper's n/2·log n/2 per
	// node), which any IA ∧ α scheme must store.
	EntropyBits float64
	// TableBits is the actual total size of the universal table scheme built
	// on that assignment.
	TableBits int
	// CompressedBits is the flate-compressed size of the concatenated
	// tables — even an optimal compressor cannot cross EntropyBits.
	CompressedBits int
}

// MeasurePortEntropy builds the universal full-table scheme on the given
// (adversarially ported) graph and accounts its size against the port-
// permutation entropy.
func MeasurePortEntropy(g *graph.Graph, ports *graph.Ports) (*PortEntropy, error) {
	s, err := fulltable.Build(g, ports)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}
	pe := &PortEntropy{}
	var blob []byte
	blobBits := 0
	for u := 1; u <= g.N(); u++ {
		pe.EntropyBits += stats.Log2Factorial(g.Degree(u))
		pe.TableBits += s.FunctionBits(u)
		enc, _, err := s.EncodedRow(u)
		if err != nil {
			return nil, err
		}
		blob = append(blob, enc.Bytes()...)
		blobBits += enc.Len()
	}
	compressed, err := kolmo.FlateCompressor{}.CompressedBits(blob, len(blob)*8)
	if err != nil {
		return nil, err
	}
	pe.CompressedBits = compressed
	return pe, nil
}

// RecoverPortAssignment demonstrates Theorem 8's core step as code: because
// the local routing function must, "for each neighbour, determine the port
// to route messages for that neighbour over", the full-table rows determine
// the entire port assignment. It rebuilds every node's port→neighbour map
// purely from the scheme's tables (and the adjacency, which under IA ∧ α
// carries no port information) and returns it for comparison with the truth.
func RecoverPortAssignment(g *graph.Graph, s *fulltable.Scheme) ([][]int, error) {
	n := g.N()
	if s.N() != n {
		return nil, fmt.Errorf("lowerbound: scheme for n=%d used with n=%d", s.N(), n)
	}
	out := make([][]int, n+1)
	for u := 1; u <= n; u++ {
		row := make([]int, g.Degree(u)+1)
		for _, v := range g.Neighbors(u) {
			// A shortest-path table routes a neighbour over the direct edge.
			port, _, err := s.Route(u, nil, routing.Label{ID: v}, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: query %d→%d: %w", u, v, err)
			}
			if port < 1 || port > g.Degree(u) {
				return nil, fmt.Errorf("lowerbound: port %d out of range at %d", port, u)
			}
			if row[port] != 0 {
				return nil, fmt.Errorf("lowerbound: port %d of %d claimed twice", port, u)
			}
			row[port] = v
		}
		out[u] = row
	}
	return out, nil
}

// VerifyRecoveredPorts compares a recovered assignment with the true one.
func VerifyRecoveredPorts(g *graph.Graph, ports *graph.Ports, recovered [][]int) error {
	for u := 1; u <= g.N(); u++ {
		for p := 1; p <= g.Degree(u); p++ {
			want, err := ports.Neighbor(u, p)
			if err != nil {
				return err
			}
			if recovered[u][p] != want {
				return fmt.Errorf("lowerbound: node %d port %d: recovered %d, want %d", u, p, recovered[u][p], want)
			}
		}
	}
	return nil
}
