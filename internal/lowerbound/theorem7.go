package lowerbound

import (
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/routing"
)

// Claim2Holds verifies the combinatorial inequality of Claim 2:
// Σ⌈log x_i⌉ ≤ n − k for positive x_1…x_k summing to n.
func Claim2Holds(xs []int) (bool, error) {
	n := 0
	for _, x := range xs {
		if x < 1 {
			return false, fmt.Errorf("lowerbound: Claim 2 needs x_i ≥ 1, got %d", x)
		}
		n += x
	}
	sum := 0
	for _, x := range xs {
		sum += bitio.CeilLog2(x)
	}
	return sum <= n-len(xs), nil
}

// PatternCodec is Claim 3 as an executable codec: given the labels of all
// nodes and node u's local routing function (queried as an oracle), the
// interconnection pattern of u can be described in Σ⌈log x_i⌉ ≤ n/2 + o(n)
// additional bits, where x_i is the number of destinations the function
// routes over edge i — for each edge it remains only to say *which* routed
// destination is the immediate neighbour.
type PatternCodec struct {
	// Scheme is the routing scheme whose local function is the oracle.
	Scheme routing.Scheme
	// Degree is d(u) (the number of ports at u).
	Degree int
	// U is the node whose pattern is encoded.
	U int
}

// routeOracle queries the scheme's function at U for every destination and
// groups destinations by answered port. Entry p of the result lists the
// destinations routed over port p in increasing order.
func (c PatternCodec) routeOracle() ([][]int, error) {
	n := c.Scheme.N()
	groups := make([][]int, c.Degree+1)
	for v := 1; v <= n; v++ {
		if v == c.U {
			continue
		}
		port, _, err := c.Scheme.Route(c.U, nil, c.Scheme.Label(v), 0, 0)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: oracle %d→%d: %w", c.U, v, err)
		}
		if port < 1 || port > c.Degree {
			return nil, fmt.Errorf("lowerbound: oracle port %d out of range", port)
		}
		groups[port] = append(groups[port], v)
	}
	return groups, nil
}

// EncodePattern emits, for every port, the ⌈log x_i⌉-bit index of the true
// neighbour within the destinations routed over that port. The output is
// the Claim 3 "additional n/2 + o(n) bits".
func (c PatternCodec) EncodePattern(g *graph.Graph, ports *graph.Ports) (*bitio.Writer, error) {
	groups, err := c.routeOracle()
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(g.N())
	for p := 1; p <= c.Degree; p++ {
		neighbor, err := ports.Neighbor(c.U, p)
		if err != nil {
			return nil, err
		}
		idx := -1
		for i, v := range groups[p] {
			if v == neighbor {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("lowerbound: port %d neighbour %d not among its routed destinations", p, neighbor)
		}
		width := bitio.CeilLog2(len(groups[p]))
		if err := w.WriteBits(uint64(idx), width); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// DecodePattern reconstructs u's neighbour-behind-port table from the
// Claim 3 bits plus the routing-function oracle (separations "can be
// determined using the knowledge of all x_i's").
func (c PatternCodec) DecodePattern(r *bitio.Reader) ([]int, error) {
	groups, err := c.routeOracle()
	if err != nil {
		return nil, err
	}
	out := make([]int, c.Degree+1)
	for p := 1; p <= c.Degree; p++ {
		width := bitio.CeilLog2(len(groups[p]))
		idx, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(groups[p]) {
			return nil, fmt.Errorf("lowerbound: decoded index %d out of group of %d", idx, len(groups[p]))
		}
		out[p] = groups[p][idx]
	}
	return out, nil
}

// Claim3Budget returns the Claim 2 ceiling n − 1 − d on the pattern bits for
// an n-node graph and degree d (with Σx_i = n−1 over d groups).
func Claim3Budget(n, d int) int { return n - 1 - d }
