package routetab

import (
	"strings"
	"testing"
)

func TestNetworkFacade(t *testing.T) {
	g, err := RandomGraph(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	ports := SortedPorts(g)
	fi, err := BuildFullInformation(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, ports, fi, NetworkOptions{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a distance-2 destination so an alternative shortest path exists
	// when the first hop's link fails.
	dst := 0
	for v := 2; v <= 32; v++ {
		if dm.Dist(1, v) == 2 {
			dst = v
			break
		}
	}
	if dst == 0 {
		t.Skip("no distance-2 pair in sample")
	}
	tr, err := nw.Send(1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops != 2 {
		t.Fatalf("hops %d, want 2", tr.Hops)
	}
	// Failover through the facade types.
	if err := nw.SetLinkDown(tr.Path[0], tr.Path[1], true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, dst); err != nil {
		t.Fatalf("failover: %v", err)
	}
}

func TestFaultInjectionFacade(t *testing.T) {
	g, err := RandomGraph(24, 9)
	if err != nil {
		t.Fatal(err)
	}
	ports := SortedPorts(g)
	fi, err := BuildFullInformation(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := RandomFaultPlan(g, FaultPlanConfig{LinkFailProb: 0.05, Horizon: 10, RepairAfter: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewFaultInjector(FaultConfig{Seed: 3, DropProb: 0.02, MaxDelayTicks: 2}, plan)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, ports, fi, NetworkOptions{
		Degraded:     true,
		TimeoutTicks: 64,
		Retry:        RetryPolicy{MaxAttempts: 3},
		Hook:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	inj.Bind(nw)
	if err := inj.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 30; i++ {
		src, dst := i%24+1, (i*7+5)%24+1
		if src == dst {
			continue
		}
		if err := inj.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Send(src, dst); err == nil {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered under light faults")
	}
	nw.Quiesce()
	var st NetworkStats = nw.Stats()
	if st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilienceFacade(t *testing.T) {
	cfg := DefaultResilienceConfig()
	cfg.N = 32
	cfg.Pairs = 25
	cfg.Probs = []float64{0, 0.1}
	cfg.Schemes = []string{"fulltable", "fullinfo"}
	res, err := RunResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	var buf strings.Builder
	if err := WriteResilienceCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fullinfo,0.10,") {
		t.Fatalf("csv:\n%s", buf.String())
	}
}

func TestLowerBoundFacade(t *testing.T) {
	gb, err := NewLowerBoundFamily(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gb.G.N() != 24 {
		t.Fatalf("n = %d", gb.G.N())
	}
	res, err := Build(gb.G, Options{Model: ModelIA(RelabelNone), MaxStretch: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(gb.G, res.Ports, res.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExtractPermutation(gb, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyExtraction(gb, ex); err != nil {
		t.Fatal(err)
	}
	if PermutationEntropyBits(8) <= 0 {
		t.Fatal("entropy should be positive")
	}
}

func TestPortcodeFacade(t *testing.T) {
	g, err := RandomGraph(24, 6)
	if err != nil {
		t.Fatal(err)
	}
	if PortCapacityBits(g) < 100 {
		t.Fatalf("capacity = %d", PortCapacityBits(g))
	}
	payload := []byte("facade")
	ports, err := StoreInPorts(g, payload, len(payload)*8)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadFromPorts(g, ports, len(payload)*8)
	if err != nil {
		t.Fatal(err)
	}
	if string(back[:len(payload)]) != "facade" {
		t.Fatalf("payload = %q", back)
	}
}

func TestNewGraphFacade(t *testing.T) {
	g, err := NewGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d", g.M())
	}
}
