package routetab

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := RandomGraph(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, Options{Model: ModelII(RelabelNone), MaxStretch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Theorem, "Theorem 1") {
		t.Fatalf("theorem = %q", res.Theorem)
	}
	rep, err := res.Verify(g, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestModelHelpers(t *testing.T) {
	if len(AllModels()) != 9 {
		t.Fatal("AllModels != 9")
	}
	m, err := ParseModel("II^gamma")
	if err != nil || m != ModelII(RelabelFree) {
		t.Fatalf("ParseModel: %v %v", m, err)
	}
	if ModelIA(RelabelNone).String() != "IA^alpha" {
		t.Fatal("ModelIA name")
	}
	if ModelIB(RelabelPermute).String() != "IB^beta" {
		t.Fatal("ModelIB name")
	}
}

func TestCertifyFacade(t *testing.T) {
	g, err := RandomGraph(96, 2)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK() {
		t.Fatalf("certificate = %s", cert)
	}
}

func TestPortsAndSim(t *testing.T) {
	g, err := RandomGraph(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, Options{Model: ModelIA(RelabelNone), MaxStretch: 1, Ports: AdversarialPorts(g, 4)})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, res.Ports, res.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.RouteByNode(1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops < 1 || tr.Hops > 2 {
		t.Fatalf("hops = %d", tr.Hops)
	}
	if SortedPorts(g).Degree(1) != g.Degree(1) {
		t.Fatal("SortedPorts degree mismatch")
	}
}

func TestExperimentFacade(t *testing.T) {
	cfg := DefaultExperimentConfig()
	if len(cfg.Sizes) == 0 || cfg.Trials < 1 {
		t.Fatal("bad default config")
	}
	cfg.Sizes = []int{32, 48, 64}
	cfg.Trials = 1
	cfg.SamplePairs = 100
	res, err := RunExperiments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(res)
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("table output missing header: %q", out[:60])
	}
}
