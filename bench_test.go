package routetab

// One benchmark per evaluation artefact (DESIGN.md experiment index): each
// regenerates the measured quantity behind a Table 1 cell or Figure 1 and
// reports it via b.ReportMetric, so `go test -bench . -benchmem` reproduces
// the paper's evaluation alongside the timing data. Ablation benches cover
// the design choices called out in DESIGN.md §5.

import (
	"fmt"
	"math/rand"
	"testing"

	"routetab/internal/descmethods"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/lowerbound"
	"routetab/internal/models"
	"routetab/internal/portcode"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/shortestpath"
)

const benchN = 128

func benchGraph(b *testing.B, seed int64) *graph.Graph {
	b.Helper()
	g, err := gengraph.GnHalf(benchN, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func reportSpace(b *testing.B, s routing.Scheme, m models.Model) {
	b.Helper()
	sp, err := routing.MeasureSpace(s, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sp.Total), "bits_total")
	b.ReportMetric(float64(sp.Total)/float64(benchN), "bits/node")
}

// BenchmarkTheorem1Compact regenerates E1 (Table 1 average upper O(n²),
// model II): build cost plus the measured total.
func BenchmarkTheorem1Compact(b *testing.B) {
	g := benchGraph(b, 1)
	var s *compact.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = compact.Build(g, compact.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkTheorem1CompactIB is E1's IB variant (+n−1 bits/node).
func BenchmarkTheorem1CompactIB(b *testing.B) {
	g := benchGraph(b, 2)
	opts := compact.Options{Mode: compact.ModeIB, Strategy: compact.LeastFirst, Threshold: compact.ThresholdLogLog}
	var s *compact.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = compact.Build(g, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IBAlpha)
}

// BenchmarkTheorem2Labels regenerates E2 (O(n log² n), model II ∧ γ).
func BenchmarkTheorem2Labels(b *testing.B) {
	g := benchGraph(b, 3)
	var s *labels.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = labels.Build(g, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIGamma)
}

// BenchmarkTheorem3Centers regenerates E3 (stretch 1.5 → O(n log n)).
func BenchmarkTheorem3Centers(b *testing.B) {
	g := benchGraph(b, 4)
	var s *centers.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = centers.Build(g, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkTheorem4Hub regenerates E4 (stretch 2 → n loglog n + 6n).
func BenchmarkTheorem4Hub(b *testing.B) {
	g := benchGraph(b, 5)
	var s *hub.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = hub.Build(g, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkTheorem5Walker regenerates E5 (stretch O(log n) → O(n)).
func BenchmarkTheorem5Walker(b *testing.B) {
	g := benchGraph(b, 6)
	var s *walker.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = walker.Build(g, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkTheorem6Codec regenerates E6 (Table 1 average lower Ω(n²), model
// II ∧ α): the description-method round trip and its ledger.
func BenchmarkTheorem6Codec(b *testing.B) {
	g := benchGraph(b, 7)
	codec := descmethods.RoutingFuncCodec{U: 1}
	var desc *kolmo.Description
	for i := 0; i < b.N; i++ {
		var err error
		desc, err = kolmo.Describe(codec, g)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(desc.Bits), "description_bits")
	b.ReportMetric(float64(-desc.Savings), "overhead_bits")
}

// BenchmarkTheorem7Accounting regenerates E7 (Ω(n²) when neighbours are
// unknown): the Claim 3 interconnection-pattern codec over every node.
func BenchmarkTheorem7Accounting(b *testing.B) {
	g := benchGraph(b, 8)
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(8)))
	s, err := fulltable.Build(g, ports)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for u := 1; u <= g.N(); u++ {
			codec := lowerbound.PatternCodec{Scheme: s, Degree: g.Degree(u), U: u}
			enc, err := codec.EncodePattern(g, ports)
			if err != nil {
				b.Fatal(err)
			}
			total += enc.Len()
		}
	}
	b.ReportMetric(float64(total), "pattern_bits_total")
}

// BenchmarkTheorem8Ports regenerates E8 (Ω(n² log n), model IA ∧ α): the
// adversarial port-permutation entropy ledger.
func BenchmarkTheorem8Ports(b *testing.B) {
	g := benchGraph(b, 9)
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(9)))
	var pe *lowerbound.PortEntropy
	for i := 0; i < b.N; i++ {
		var err error
		pe, err = lowerbound.MeasurePortEntropy(g, ports)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pe.EntropyBits, "entropy_bits")
	b.ReportMetric(float64(pe.TableBits), "table_bits")
}

// BenchmarkTheorem9Family regenerates E9 (Figure 1 + worst-case
// Ω(n² log n)): build G_B, route, extract the hidden permutation.
func BenchmarkTheorem9Family(b *testing.B) {
	k := benchN / 3
	gb, err := gengraph.RandomGB(k, rand.New(rand.NewSource(10)))
	if err != nil {
		b.Fatal(err)
	}
	ports := graph.SortedPorts(gb.G)
	s, err := fulltable.Build(gb.G, ports)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := routing.NewSim(gb.G, ports, s)
	if err != nil {
		b.Fatal(err)
	}
	var ex *lowerbound.Extraction
	for i := 0; i < b.N; i++ {
		ex, err = lowerbound.ExtractPermutation(gb, sim)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := lowerbound.VerifyExtraction(gb, ex); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ex.TotalBits, "entropy_bits_total")
}

// BenchmarkTheorem10FullInfo regenerates E10 (Θ(n³) full information).
func BenchmarkTheorem10FullInfo(b *testing.B) {
	g := benchGraph(b, 11)
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		b.Fatal(err)
	}
	var s *fullinfo.Scheme
	for i := 0; i < b.N; i++ {
		s, err = fullinfo.Build(g, ports, dm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IAAlpha)
}

// BenchmarkLemmas regenerates E11: full c·log n-randomness certification
// (Lemmas 1–3 + compressibility).
func BenchmarkLemmas(b *testing.B) {
	g := benchGraph(b, 12)
	var cert *kolmo.Certificate
	for i := 0; i < b.N; i++ {
		var err error
		cert, err = kolmo.Certify(g, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !cert.OK() {
		b.Fatal("sample failed certification")
	}
	b.ReportMetric(float64(cert.MaxCoverPrefix), "max_cover_prefix")
}

// BenchmarkCorollary1Average regenerates E12: the uniform-average total over
// sampled graphs (Corollary 1's averaging step) for the Theorem 1 scheme.
func BenchmarkCorollary1Average(b *testing.B) {
	seeds := []int64{21, 22, 23}
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, seed := range seeds {
			g := benchGraph(b, seed)
			s, err := compact.Build(g, compact.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			sp, err := routing.MeasureSpace(s, models.IIAlpha)
			if err != nil {
				b.Fatal(err)
			}
			sum += float64(sp.Total)
		}
		avg = sum / float64(len(seeds))
	}
	b.ReportMetric(avg, "bits_total_avg")
	b.ReportMetric(avg/float64(benchN*benchN), "bits_per_n2")
}

// BenchmarkBFS compares the all-pairs BFS kernels on dense δ-random graphs:
// the classic neighbour-list BFS against the word-parallel bitset BFS
// (PR 2's tentpole; acceptance: bitset ≥ 3× faster on G(1024, 1/2)). Each op
// is one full n-source all-pairs pass, so ns/op ÷ n is the per-BFS cost.
func BenchmarkBFS(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(42)))
		if err != nil {
			b.Fatal(err)
		}
		g.Neighbors(1) // pre-build lists so the list kernel pays no setup
		for _, k := range []struct {
			name  string
			strat shortestpath.Strategy
		}{
			{"list", shortestpath.StrategyList},
			{"bitset", shortestpath.StrategyBitset},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", k.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := shortestpath.AllPairsStrategy(g, k.strat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAllPairsCache measures the shared distance cache: a cold
// computation versus a (graph, version)-keyed hit.
func BenchmarkAllPairsCache(b *testing.B) {
	g, err := gengraph.GnHalf(256, rand.New(rand.NewSource(43)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shortestpath.AllPairs(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := shortestpath.NewCache(2)
		if _, err := c.AllPairs(g); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.AllPairs(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFullTableBuild measures the parallel per-source tree construction.
func BenchmarkFullTableBuild(b *testing.B) {
	g := benchGraph(b, 19)
	ports := graph.SortedPorts(g)
	for i := 0; i < b.N; i++ {
		if _, err := fulltable.Build(g, ports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteCompact measures the per-message routing hot path.
func BenchmarkRouteCompact(b *testing.B) {
	g := benchGraph(b, 13)
	s, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	sim, err := routing.NewSim(g, graph.SortedPorts(g), s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i%benchN + 1
		dst := (i*31+57)%benchN + 1
		if src == dst {
			continue
		}
		if _, err := sim.RouteByNode(src, dst, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyCover compares DESIGN.md §5's greedy cover against
// the paper's least-first rule.
func BenchmarkAblationGreedyCover(b *testing.B) {
	g := benchGraph(b, 14)
	opts := compact.Options{Mode: compact.ModeII, Strategy: compact.Greedy, Threshold: compact.ThresholdLogLog}
	var s *compact.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = compact.Build(g, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkAblationThresholdLog measures the 3n-bit threshold variant.
func BenchmarkAblationThresholdLog(b *testing.B) {
	g := benchGraph(b, 15)
	opts := compact.Options{Mode: compact.ModeII, Strategy: compact.LeastFirst, Threshold: compact.ThresholdLog}
	var s *compact.Scheme
	for i := 0; i < b.N; i++ {
		var err error
		s, err = compact.Build(g, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpace(b, s, models.IIAlpha)
}

// BenchmarkAblationCompressors compares the deficiency estimators.
func BenchmarkAblationCompressors(b *testing.B) {
	g := benchGraph(b, 16)
	data := g.EncodeBytes()
	nbits := graph.EdgeCodeLen(g.N())
	for _, c := range kolmo.DefaultCompressors() {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var err error
				size, err = c.CompressedBits(data, nbits)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nbits-size), "deficiency_bits")
		})
	}
}

// BenchmarkPortcodeStoreLoad measures the footnote-to-model-II side channel:
// ranking/unranking every node's port permutation.
func BenchmarkPortcodeStoreLoad(b *testing.B) {
	g := benchGraph(b, 17)
	capacity := portcode.Capacity(g)
	payload := make([]byte, capacity/8)
	rng := rand.New(rand.NewSource(17))
	rng.Read(payload)
	nbits := capacity - capacity%8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports, err := portcode.StoreBits(g, payload, nbits)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := portcode.LoadBits(g, ports, nbits); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(capacity), "capacity_bits")
}

// BenchmarkCompactMarshal measures scheme persistence round trips.
func BenchmarkCompactMarshal(b *testing.B) {
	g := benchGraph(b, 18)
	s, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var blob []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err = s.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compact.Unmarshal(blob, g); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)*8), "blob_bits")
}
