package routetab

import (
	"routetab/internal/serve"
	"routetab/internal/serve/loadgen"
	"routetab/internal/serve/metrics"
)

// The serving layer (cmd/routetabd's engine), re-exported for the examples
// and downstream users: an in-memory query service holding one built scheme
// behind an immutable, versioned, atomically hot-swappable snapshot, with a
// sharded batching worker pool, explicit backpressure, and built-in metrics.
type (
	// ServeEngine owns the current topology and its published Snapshot;
	// Mutate rebuilds off the hot path and swaps atomically.
	ServeEngine = serve.Engine
	// ServeServer answers NextHop/LookupBatch through the sharded pool.
	ServeServer = serve.Server
	// ServeOptions sizes the server's shards, queues, and batches.
	ServeOptions = serve.ServerOptions
	// ServeSnapshot is one immutable published version: graph, ports,
	// distances, scheme, and monotonic Seq.
	ServeSnapshot = serve.Snapshot
	// LookupResult is one answered lookup with its serving snapshot's
	// distances and Seq, so callers can validate correctness and freshness.
	LookupResult = serve.Result
	// LoadConfig parameterises the closed-loop load generator.
	LoadConfig = loadgen.Config
	// LoadReport is a load run's outcome (QPS, latency quantiles,
	// validation tallies).
	LoadReport = loadgen.Report
	// MetricsRegistry is the zero-dependency counter/gauge/histogram
	// registry every ServeServer carries (JSON-marshalable).
	MetricsRegistry = metrics.Registry
)

// NewServeEngine builds schemeName over a private clone of g and publishes
// the first snapshot. Scheme names are listed by ServeSchemes.
func NewServeEngine(g *Graph, schemeName string) (*ServeEngine, error) {
	return serve.NewEngine(g, schemeName)
}

// NewServeServer starts the sharded lookup service over eng. Callers must
// Close it.
func NewServeServer(eng *ServeEngine, opts ServeOptions) *ServeServer {
	return serve.NewServer(eng, opts)
}

// ServeSchemes lists the scheme names the serving layer can build.
func ServeSchemes() []string { return serve.SchemeNames() }

// RunLoad drives the closed-loop load generator against s (see LoadConfig).
func RunLoad(s *ServeServer, cfg LoadConfig) (*LoadReport, error) {
	return loadgen.Run(s, cfg)
}
